// Package live turns the immutable dataset.Table into a durable,
// versioned, appendable one: a base snapshot plus a redo-log WAL
// (internal/wal) of append batches, published as a chain of immutable
// table versions via copy-on-append (dataset.Table.WithAppended).
//
// Contracts:
//
//   - Durability before visibility: a batch is WAL-committed before the
//     new version is published, so any observable version is recoverable.
//     A crash mid-append loses at most the in-flight batch; recovery
//     (Open) replays the committed log over the base and lands exactly on
//     the last committed batch, with no partial rows — batches are atomic
//     (one WAL record, one copy-on-append step).
//   - MVCC reads: Current returns an immutable version; concurrent
//     appends publish new versions and never mutate published ones, so
//     sessions and scans are race-free without coordination.
//   - O(1) version identity: VersionRef = base content hash + WAL
//     sequence number (store.VersionedRef). The offline cache addresses
//     entries by it, so appends mint new addresses instead of forcing
//     whole-table re-hashing, and ancestor versions' entries survive.
//   - Bounded recovery: Checkpoint persists the current version as an
//     atomic snapshot (temp + fsync + rename beside the WAL) and compacts
//     the log to the post-checkpoint suffix, so restart replay is
//     snapshot + suffix however long the table has lived. The snapshot
//     records the ORIGINAL base hash — VersionRef stays baseHash@seq,
//     monotone across checkpoints. A crash in either window (before the
//     rename: old state, full replay; after it, before the truncate:
//     snapshot wins, duplicate frames skipped by sequence) recovers
//     bit-identically; a corrupt or wrong-base snapshot is a hard Open
//     error, because the log behind it may already be compacted.
//     Checkpoints are single-flight, manual (Checkpoint) or automatic
//     past Options.CheckpointBytes of WAL growth.
//
// Observability follows the DESIGN.md §11 schema: appended-rows counter,
// last-sequence gauge, checkpoint counters and the checkpoint-age and
// WAL-size gauges, plus the wal package's fsync/recovery series. Status
// snapshots the same numbers for /healthz.
package live
