// Package live turns the immutable dataset.Table into a durable,
// versioned, appendable one: a base snapshot plus a redo-log WAL
// (internal/wal) of append batches, published as a chain of immutable
// table versions via copy-on-append (dataset.Table.WithAppended).
//
// Contracts:
//
//   - Durability before visibility: a batch is WAL-committed before the
//     new version is published, so any observable version is recoverable.
//     A crash mid-append loses at most the in-flight batch; recovery
//     (Open) replays the committed log over the base and lands exactly on
//     the last committed batch, with no partial rows — batches are atomic
//     (one WAL record, one copy-on-append step).
//   - MVCC reads: Current returns an immutable version; concurrent
//     appends publish new versions and never mutate published ones, so
//     sessions and scans are race-free without coordination.
//   - O(1) version identity: VersionRef = base content hash + WAL
//     sequence number (store.VersionedRef). The offline cache addresses
//     entries by it, so appends mint new addresses instead of forcing
//     whole-table re-hashing, and ancestor versions' entries survive.
//
// Observability follows the DESIGN.md §11 schema: appended-rows counter,
// last-sequence gauge, plus the wal package's fsync/recovery series.
package live
