package diversify

import (
	"fmt"
	"math"
)

// MMR selects k item indices by Maximal Marginal Relevance: each step
// takes the item maximising
//
//	lambda·score(i) − (1−lambda)·max_{j∈selected} sim(i, j)
//
// where sim is a normalised similarity over the items' feature vectors.
// lambda = 1 reproduces the plain top-k by score; lambda = 0 ignores
// utility entirely. Scores are min-max normalised internally so lambda
// means the same thing regardless of score scale.
func MMR(scores []float64, features [][]float64, k int, lambda float64) ([]int, error) {
	n := len(scores)
	if n == 0 {
		return nil, fmt.Errorf("diversify: no items")
	}
	if len(features) != n {
		return nil, fmt.Errorf("diversify: %d scores but %d feature rows", n, len(features))
	}
	if lambda < 0 || lambda > 1 {
		return nil, fmt.Errorf("diversify: lambda %g outside [0, 1]", lambda)
	}
	if k > n {
		k = n
	}
	norm := normalizeScores(scores)
	selected := make([]int, 0, k)
	taken := make([]bool, n)
	sims := make([]float64, n) // max similarity to any selected item
	for len(selected) < k {
		best, bestVal := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if taken[i] {
				continue
			}
			val := lambda * norm[i]
			if len(selected) > 0 {
				val -= (1 - lambda) * sims[i]
			}
			if val > bestVal {
				best, bestVal = i, val
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		selected = append(selected, best)
		for i := 0; i < n; i++ {
			if taken[i] {
				continue
			}
			if s := Similarity(features[best], features[i]); s > sims[i] {
				sims[i] = s
			}
		}
	}
	return selected, nil
}

// Similarity maps the Euclidean distance between two feature vectors into
// (0, 1]: 1 for identical vectors, falling toward 0 as they separate.
func Similarity(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		t := a[i] - b[i]
		d += t * t
	}
	return 1 / (1 + math.Sqrt(d))
}

func normalizeScores(scores []float64) []float64 {
	lo, hi := scores[0], scores[0]
	for _, s := range scores {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	out := make([]float64, len(scores))
	if hi <= lo {
		return out
	}
	for i, s := range scores {
		out[i] = (s - lo) / (hi - lo)
	}
	return out
}

// Coverage reports the mean pairwise distance of the selected items'
// feature vectors — the diversity measure DiVE-style evaluations plot.
func Coverage(selected []int, features [][]float64) float64 {
	if len(selected) < 2 {
		return 0
	}
	total, pairs := 0.0, 0
	for i := 0; i < len(selected); i++ {
		for j := i + 1; j < len(selected); j++ {
			a, b := features[selected[i]], features[selected[j]]
			d := 0.0
			for t := range a {
				x := a[t] - b[t]
				d += x * x
			}
			total += math.Sqrt(d)
			pairs++
		}
	}
	return total / float64(pairs)
}
