package diversify

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// clusteredItems builds two tight clusters: cluster A has the top scores,
// cluster B slightly lower. Plain top-k picks only cluster A; MMR should
// mix.
func clusteredItems() (scores []float64, features [][]float64) {
	for i := 0; i < 5; i++ {
		scores = append(scores, 1.0-float64(i)*0.01)
		features = append(features, []float64{1, 1, float64(i) * 0.01})
	}
	for i := 0; i < 5; i++ {
		scores = append(scores, 0.8-float64(i)*0.01)
		features = append(features, []float64{-1, -1, float64(i) * 0.01})
	}
	return scores, features
}

func TestMMRLambdaOneIsPlainTopK(t *testing.T) {
	scores, features := clusteredItems()
	got, err := MMR(scores, features, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lambda=1 MMR = %v, want %v", got, want)
		}
	}
}

func TestMMRDiversifies(t *testing.T) {
	scores, features := clusteredItems()
	got, err := MMR(scores, features, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var clusterA, clusterB int
	for _, i := range got {
		if i < 5 {
			clusterA++
		} else {
			clusterB++
		}
	}
	if clusterA == 0 || clusterB == 0 {
		t.Errorf("MMR selection %v covers only one cluster", got)
	}
	// Diversified coverage beats plain top-k coverage.
	plain, _ := MMR(scores, features, 4, 1)
	if Coverage(got, features) <= Coverage(plain, features) {
		t.Errorf("MMR coverage %.3f not above plain %.3f",
			Coverage(got, features), Coverage(plain, features))
	}
}

func TestMMRValidation(t *testing.T) {
	if _, err := MMR(nil, nil, 3, 0.5); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := MMR([]float64{1}, [][]float64{{1}, {2}}, 1, 0.5); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := MMR([]float64{1}, [][]float64{{1}}, 1, 2); err == nil {
		t.Error("bad lambda should fail")
	}
	// k beyond n clamps.
	got, err := MMR([]float64{1, 2}, [][]float64{{1}, {2}}, 10, 0.5)
	if err != nil || len(got) != 2 {
		t.Errorf("clamped MMR = %v, %v", got, err)
	}
}

func TestMMRProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		scores := make([]float64, n)
		features := make([][]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
			features[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		k := 1 + rng.Intn(n)
		got, err := MMR(scores, features, k, rng.Float64())
		if err != nil || len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, i := range got {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSimilarity(t *testing.T) {
	if s := Similarity([]float64{1, 2}, []float64{1, 2}); s != 1 {
		t.Errorf("identical similarity = %v", s)
	}
	near := Similarity([]float64{0, 0}, []float64{0.1, 0})
	far := Similarity([]float64{0, 0}, []float64{10, 0})
	if near <= far {
		t.Errorf("similarity ordering wrong: %v vs %v", near, far)
	}
	if far <= 0 || far > 1 {
		t.Errorf("similarity out of range: %v", far)
	}
}

func TestCoverage(t *testing.T) {
	features := [][]float64{{0, 0}, {3, 4}, {0, 0}}
	if got := Coverage([]int{0, 1}, features); math.Abs(got-5) > 1e-12 {
		t.Errorf("coverage = %v, want 5", got)
	}
	if got := Coverage([]int{0}, features); got != 0 {
		t.Errorf("single-item coverage = %v", got)
	}
	if got := Coverage([]int{0, 2}, features); got != 0 {
		t.Errorf("duplicate-point coverage = %v", got)
	}
}
