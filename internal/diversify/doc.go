// Package diversify re-ranks top-k view recommendations for diversity,
// after DiVE (Mafrur, Sharaf, Khan — "DiVE: Diversifying View
// Recommendation for Visual Data Exploration", CIKM 2018), which the
// paper's related-work section positions next to ViewSeeker: a recommender
// that only maximises utility tends to return k near-duplicates of the
// single best view. Maximal Marginal Relevance trades predicted utility
// against similarity to the views already selected.
//
// # Contracts
//
// MMR is pure and deterministic: it never mutates its inputs, ties break
// by ascending index, and lambda = 1 reduces exactly to plain
// top-k-by-score — the invariant the tests pin so diversification can be
// enabled per-request without perturbing the default ranking.
package diversify
