package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"viewseeker/internal/dataset"
	"viewseeker/internal/faultfs"
	"viewseeker/internal/retry"
)

func testRows(n, base int) [][]dataset.Value {
	rows := make([][]dataset.Value, n)
	for i := range rows {
		rows[i] = []dataset.Value{
			dataset.Int(int64(base + i)),
			dataset.Float(float64(base+i) * 0.5),
			dataset.StringVal("cat"),
			dataset.Bool(i%2 == 0),
			dataset.Null,
		}
	}
	return rows
}

func openT(t *testing.T, fs faultfs.FS, path string, opts Options) (*WAL, *Recovery) {
	t.Helper()
	w, rec, err := Open(fs, path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w, rec
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, rec := openT(t, nil, path, Options{})
	if rec.LastSeq != 0 || len(rec.Batches) != 0 {
		t.Fatalf("fresh log recovered %d batches, seq %d", len(rec.Batches), rec.LastSeq)
	}
	want := []Batch{}
	for i := 0; i < 5; i++ {
		rows := testRows(3+i, i*100)
		seq, err := w.Append(rows)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d: seq %d, want %d", i, seq, i+1)
		}
		want = append(want, Batch{Seq: seq, Rows: rows})
	}
	if w.Seq() != 5 {
		t.Fatalf("Seq() = %d, want 5", w.Seq())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, rec2 := openT(t, nil, path, Options{})
	if rec2.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
	if !reflect.DeepEqual(rec2.Batches, want) {
		t.Fatalf("replayed batches differ:\n got %+v\nwant %+v", rec2.Batches, want)
	}
	if w2.Seq() != 5 {
		t.Fatalf("reopened Seq() = %d, want 5", w2.Seq())
	}
	// Appends continue the chain after reopen.
	if seq, err := w2.Append(testRows(1, 999)); err != nil || seq != 6 {
		t.Fatalf("post-reopen Append: seq %d err %v, want 6 nil", seq, err)
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	w, _ := openT(t, nil, filepath.Join(t.TempDir(), "t.wal"), Options{})
	if _, err := w.Append(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestRaggedBatchRejected(t *testing.T) {
	w, _ := openT(t, nil, filepath.Join(t.TempDir(), "t.wal"), Options{})
	rows := [][]dataset.Value{{dataset.Int(1), dataset.Int(2)}, {dataset.Int(3)}}
	if _, err := w.Append(rows); err == nil {
		t.Fatal("ragged batch accepted")
	}
	// The failed encode must not advance the sequence or write anything.
	if w.Seq() != 0 {
		t.Fatalf("Seq advanced to %d on rejected batch", w.Seq())
	}
	if _, rec := openT(t, nil, w.Path(), Options{}); len(rec.Batches) != 0 {
		t.Fatalf("rejected batch reached disk: %d batches", len(rec.Batches))
	}
}

// TestRecoveryTruncatesTornTail appends through a tearing FS so a partial
// frame lands on disk (retries disabled so the tear survives), then checks
// Open truncates it and replays exactly the committed prefix.
func TestRecoveryFaultTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	fs := faultfs.NewFaulty(nil)
	w, _ := openT(t, fs, path, Options{Retry: retry.Policy{Attempts: 1}})
	committed := testRows(4, 0)
	if _, err := w.Append(committed); err != nil {
		t.Fatalf("Append: %v", err)
	}

	// Tear mid-record and make truncation fail too, simulating a crash
	// before repair: the partial frame stays on disk for recovery to find.
	tearErr := errors.New("injected tear")
	fs.TearWritesAfter(10, tearErr)
	failFS := &failTruncateFS{FS: fs}
	w2, _ := openT(t, failFS, path, Options{Retry: retry.Policy{Attempts: 1}})
	if _, err := w2.Append(testRows(2, 50)); err == nil {
		t.Fatal("torn append reported success")
	}
	fs.Clear()
	w2.Close()

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	w3, rec := openT(t, fs, path, Options{})
	if !rec.TornTail {
		t.Fatal("recovery missed the torn tail")
	}
	if rec.TornBytes != 10 {
		t.Fatalf("TornBytes = %d, want 10", rec.TornBytes)
	}
	if len(rec.Batches) != 1 || !reflect.DeepEqual(rec.Batches[0].Rows, committed) {
		t.Fatalf("recovery did not restore the committed prefix: %+v", rec.Batches)
	}
	st2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Size() >= st.Size() || st2.Size() != rec.CommittedBytes {
		t.Fatalf("truncation sizes: before %d after %d committed %d", st.Size(), st2.Size(), rec.CommittedBytes)
	}
	// The log is writable again after recovery.
	if seq, err := w3.Append(testRows(1, 7)); err != nil || seq != 2 {
		t.Fatalf("post-recovery Append: seq %d err %v, want 2 nil", seq, err)
	}
}

// TestAppendRetryCompletesTear: one torn write followed by healthy writes —
// the retry must complete the record's missing suffix so the log stays
// byte-perfect.
func TestFaultAppendRetryCompletesTear(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	fs := faultfs.NewFaulty(nil)
	w, _ := openT(t, fs, path, Options{Retry: retry.Policy{Attempts: 3, Sleep: func(time.Duration) {}}})
	rows := testRows(3, 0)
	fs.FailNextWrites(1, errors.New("transient"))
	if _, err := w.Append(rows); err != nil {
		t.Fatalf("Append with transient fault: %v", err)
	}
	w.Close()

	// Reopen through an FS that tears exactly one write mid-record: the
	// retry must resume at the torn byte, not rewrite the whole frame.
	tfs := &tearOnceFS{FS: faultfs.OS{}, tearAt: 5}
	w2, _ := openT(t, tfs, path, Options{Retry: retry.Policy{Attempts: 3, Sleep: func(time.Duration) {}}})
	rows2 := testRows(2, 10)
	if _, err := w2.Append(rows2); err != nil {
		t.Fatalf("Append with torn first write: %v", err)
	}
	if !tfs.torn {
		t.Fatal("tear fault never fired")
	}
	w2.Close()

	_, rec := openT(t, nil, path, Options{})
	if rec.TornTail {
		t.Fatal("retried appends left a torn tail")
	}
	if len(rec.Batches) != 2 ||
		!reflect.DeepEqual(rec.Batches[0].Rows, rows) ||
		!reflect.DeepEqual(rec.Batches[1].Rows, rows2) {
		t.Fatalf("replay after retries: %+v", rec.Batches)
	}
}

// tearOnceFS persists the first tearAt bytes of one write, errors it, then
// behaves normally — a single transient torn write.
type tearOnceFS struct {
	faultfs.FS
	tearAt int
	torn   bool
}

func (f *tearOnceFS) OpenFile(name string, flag int, perm os.FileMode) (faultfs.File, error) {
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &tearOnceFile{File: file, fs: f}, nil
}

type tearOnceFile struct {
	faultfs.File
	fs *tearOnceFS
}

func (f *tearOnceFile) Write(p []byte) (int, error) {
	if !f.fs.torn && len(p) > f.fs.tearAt {
		f.fs.torn = true
		n, err := f.File.Write(p[:f.fs.tearAt])
		if err != nil {
			return n, err
		}
		return n, errors.New("injected one-shot tear")
	}
	return f.File.Write(p)
}

// failTruncateFS makes torn-tail repair impossible, forcing the poison path.
type failTruncateFS struct{ faultfs.FS }

func (f *failTruncateFS) Truncate(string, int64) error {
	return errors.New("injected truncate failure")
}

func TestFaultPoisonedAfterFailedTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	faulty := faultfs.NewFaulty(nil)
	fs := &failTruncateFS{FS: faulty}
	w, _ := openT(t, fs, path, Options{Retry: retry.Policy{Attempts: 1}})
	if _, err := w.Append(testRows(1, 0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	faulty.TearWritesAfter(3, errors.New("tear"))
	if _, err := w.Append(testRows(1, 1)); err == nil {
		t.Fatal("torn, untruncatable append reported success")
	}
	faulty.Clear()
	if _, err := w.Append(testRows(1, 2)); err == nil {
		t.Fatal("poisoned log accepted an append")
	}
	// Reopen through a healthy FS repairs the tail.
	w.Close()
	w2, rec := openT(t, nil, path, Options{})
	if len(rec.Batches) != 1 || !rec.TornTail {
		t.Fatalf("recovery after poison: %d batches, torn=%v", len(rec.Batches), rec.TornTail)
	}
	if _, err := w2.Append(testRows(1, 3)); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
}

// TestRecoveryCorruptPayload flips a byte inside a committed record: the
// checksum must reject it and truncate from that record on.
func TestRecoveryCorruptPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := openT(t, nil, path, Options{})
	w.Append(testRows(2, 0))
	w.Append(testRows(2, 10))
	w.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte of the second record. Record 1's frame length
	// is in its first 4 bytes.
	rec1 := recordHeaderLen + int64(uint32le(raw[0:4]))
	raw[rec1+recordHeaderLen+2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openT(t, nil, path, Options{})
	if !rec.TornTail || len(rec.Batches) != 1 || rec.Batches[0].Seq != 1 {
		t.Fatalf("corrupt second record: torn=%v batches=%d", rec.TornTail, len(rec.Batches))
	}
}

// TestRecoverySeqChainBreak: a record whose sequence number skips ahead is
// rejected even though its checksum is valid — logs cannot replay out of
// order.
func TestRecoverySeqChainBreak(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.wal")
	b := filepath.Join(dir, "b.wal")
	wa, _ := openT(t, nil, a, Options{})
	wa.Append(testRows(1, 0))
	wa.Close()
	wb, _ := openT(t, nil, b, Options{})
	wb.Append(testRows(1, 0))
	wb.Append(testRows(1, 1))
	wb.Close()
	// Splice b's second record (seq 2) after nothing: seq chain 2 ≠ 1.
	rawB, _ := os.ReadFile(b)
	recB1 := recordHeaderLen + int64(uint32le(rawB[0:4]))
	spliced := filepath.Join(dir, "s.wal")
	if err := os.WriteFile(spliced, rawB[recB1:], 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, nil, spliced, Options{})
	if !rec.TornTail || len(rec.Batches) != 0 {
		t.Fatalf("out-of-order record accepted: torn=%v batches=%d", rec.TornTail, len(rec.Batches))
	}
}

func TestSyncEveryBatchesFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	fs := &countingFS{FS: faultfs.OS{}}
	w, _ := openT(t, fs, path, Options{SyncEvery: 3})
	for i := 0; i < 7; i++ {
		if _, err := w.Append(testRows(1, i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if got := fs.syncs.count(); got != 2 { // after batches 3 and 6
		t.Fatalf("fsyncs after 7 appends with SyncEvery=3: %d, want 2", got)
	}
	w.Close() // final sync
	if got := fs.syncs.count(); got != 3 {
		t.Fatalf("fsyncs after Close: %d, want 3", got)
	}
}

func uint32le(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

type syncCounter struct {
	n  int
	mu chan struct{}
}

func newSyncCounter() *syncCounter {
	c := &syncCounter{mu: make(chan struct{}, 1)}
	c.mu <- struct{}{}
	return c
}
func (c *syncCounter) inc() {
	<-c.mu
	c.n++
	c.mu <- struct{}{}
}
func (c *syncCounter) count() int {
	<-c.mu
	n := c.n
	c.mu <- struct{}{}
	return n
}

type countingFS struct {
	faultfs.FS
	syncs *syncCounter
}

func (c *countingFS) OpenFile(name string, flag int, perm os.FileMode) (faultfs.File, error) {
	if c.syncs == nil {
		c.syncs = newSyncCounter()
	}
	f, err := c.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, syncs: c.syncs}, nil
}

type countingFile struct {
	faultfs.File
	syncs *syncCounter
}

func (c *countingFile) Sync() error {
	c.syncs.inc()
	return c.File.Sync()
}

// TestSkipThroughRecovery: recovery with SkipThrough validates every frame
// but drops the already-covered prefix from Batches, and LastSeq never
// goes below SkipThrough even when the log holds nothing past it.
func TestSkipThroughRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := openT(t, nil, path, Options{})
	for i := 0; i < 5; i++ {
		if _, err := w.Append(testRows(2, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	w2, rec := openT(t, nil, path, Options{SkipThrough: 3})
	if rec.SkippedFrames != 3 || len(rec.Batches) != 2 || rec.LastSeq != 5 || rec.TornTail {
		t.Fatalf("skip 3: %d skipped, %d batches, seq %d, torn %v",
			rec.SkippedFrames, len(rec.Batches), rec.LastSeq, rec.TornTail)
	}
	if rec.Batches[0].Seq != 4 || rec.Batches[1].Seq != 5 {
		t.Fatalf("surviving batch seqs: %d, %d", rec.Batches[0].Seq, rec.Batches[1].Seq)
	}
	w2.Close()

	// Everything covered: no batches, but the seq counter holds.
	w3, rec := openT(t, nil, path, Options{SkipThrough: 5})
	if rec.SkippedFrames != 5 || len(rec.Batches) != 0 || rec.LastSeq != 5 {
		t.Fatalf("skip 5: %d skipped, %d batches, seq %d",
			rec.SkippedFrames, len(rec.Batches), rec.LastSeq)
	}
	w3.Close()

	// SkipThrough beyond the log: LastSeq = SkipThrough, appends continue
	// from there (the external snapshot is ahead of this log).
	w4, rec := openT(t, nil, path, Options{SkipThrough: 7})
	if rec.LastSeq != 7 || len(rec.Batches) != 0 {
		t.Fatalf("skip 7: %d batches, seq %d", len(rec.Batches), rec.LastSeq)
	}
	if seq, err := w4.Append(testRows(1, 0)); err != nil || seq != 8 {
		t.Fatalf("append after skip-beyond: seq %d err %v", seq, err)
	}
}

// TestCompactThroughTail: compacting through the newest frame truncates
// the log to zero in place; the append handle survives and recovery with
// the matching SkipThrough sees only later frames.
func TestCompactThroughTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := openT(t, nil, path, Options{})
	for i := 0; i < 3; i++ {
		if _, err := w.Append(testRows(2, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Bytes() == 0 {
		t.Fatal("Bytes() = 0 after appends")
	}
	if err := w.CompactThrough(3); err != nil {
		t.Fatal(err)
	}
	if w.Bytes() != 0 {
		t.Fatalf("Bytes() = %d after full compaction, want 0", w.Bytes())
	}
	rows := testRows(2, 100)
	if seq, err := w.Append(rows); err != nil || seq != 4 {
		t.Fatalf("append after compaction: seq %d err %v", seq, err)
	}
	w.Close()

	_, rec := openT(t, nil, path, Options{SkipThrough: 3})
	if len(rec.Batches) != 1 || rec.Batches[0].Seq != 4 || rec.LastSeq != 4 || rec.SkippedFrames != 0 {
		t.Fatalf("recovery after tail compaction: %+v", rec)
	}
	if !reflect.DeepEqual(rec.Batches[0].Rows, rows) {
		t.Fatal("surviving batch rows differ")
	}
}

// TestCompactThroughPartial: compacting through a mid-log seq rewrites the
// retained suffix; the kept frames replay byte-identically and appends
// continue on the rewritten file.
func TestCompactThroughPartial(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := openT(t, nil, path, Options{})
	var kept [][][]dataset.Value
	for i := 0; i < 5; i++ {
		rows := testRows(2+i, i*10)
		if _, err := w.Append(rows); err != nil {
			t.Fatal(err)
		}
		if i >= 2 {
			kept = append(kept, rows)
		}
	}
	before := w.Bytes()
	if err := w.CompactThrough(2); err != nil {
		t.Fatal(err)
	}
	if after := w.Bytes(); after == 0 || after >= before {
		t.Fatalf("Bytes() = %d after partial compaction, want in (0, %d)", after, before)
	}
	last := testRows(1, 900)
	if seq, err := w.Append(last); err != nil || seq != 6 {
		t.Fatalf("append after compaction: seq %d err %v", seq, err)
	}
	kept = append(kept, last)
	w.Close()

	_, rec := openT(t, nil, path, Options{SkipThrough: 2})
	if len(rec.Batches) != 4 || rec.LastSeq != 6 || rec.SkippedFrames != 0 || rec.TornTail {
		t.Fatalf("recovery after partial compaction: %+v", rec)
	}
	for i, b := range rec.Batches {
		if b.Seq != uint64(i+3) || !reflect.DeepEqual(b.Rows, kept[i]) {
			t.Fatalf("batch %d: seq %d, rows equal %v", i, b.Seq, reflect.DeepEqual(b.Rows, kept[i]))
		}
	}
}

// TestCompactedLogNeedsSkipThrough pins the misuse contract: a compacted
// log opened without the matching SkipThrough starts mid-chain, which is
// indistinguishable from corruption and reported as a torn tail.
func TestCompactedLogNeedsSkipThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := openT(t, nil, path, Options{})
	for i := 0; i < 4; i++ {
		if _, err := w.Append(testRows(2, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.CompactThrough(2); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, rec := openT(t, nil, path, Options{})
	if !rec.TornTail || len(rec.Batches) != 0 {
		t.Fatalf("mid-chain log without SkipThrough: torn %v, %d batches",
			rec.TornTail, len(rec.Batches))
	}
}
