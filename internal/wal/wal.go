package wal

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"viewseeker/internal/dataset"
	"viewseeker/internal/faultfs"
	"viewseeker/internal/obs"
	"viewseeker/internal/retry"
)

// Batch is one committed append: a contiguous run of rows (boxed values in
// schema order) under a monotone sequence number. Sequence numbers start at
// 1 and increase by exactly 1 per committed batch; Open verifies the chain
// during recovery, so a corrupted or cross-copied log can never replay out
// of order.
type Batch struct {
	Seq  uint64
	Rows [][]dataset.Value
}

// Options configures a WAL.
type Options struct {
	// SyncEvery batches fsyncs: the log syncs after every SyncEvery-th
	// committed batch instead of after each one (and always on Sync and
	// Close). <= 1 syncs every append — the durable default; larger values
	// trade up to SyncEvery-1 most-recent batches on a crash for append
	// throughput. Recovery is unaffected either way: the on-disk prefix is
	// always a valid record sequence.
	SyncEvery int
	// Retry is the append retry schedule; the zero value selects
	// retry.Default().
	Retry retry.Policy
	// SkipThrough marks the sequence number already covered by an external
	// snapshot: recovery still validates every on-disk frame, but batches
	// with Seq <= SkipThrough are dropped from Recovery.Batches (counted in
	// Recovery.SkippedFrames) instead of being replayed. This is how a
	// checkpointed log tolerates the crash window between the snapshot
	// rename and the log truncation — duplicate suffix frames are detected
	// by seq and skipped. The log may legitimately begin at any seq in
	// [1, SkipThrough+1]; the chain must be contiguous from there.
	SkipThrough uint64
}

// Value kind tags of the record payload encoding.
const (
	tagNull = iota
	tagInt
	tagFloat
	tagString
	tagBool
)

// recordHeaderLen is the fixed per-record frame: payload length then
// CRC-32C of the payload, both little-endian u32. Length-prefixing finds
// record boundaries; the checksum rejects torn or bit-rotted payloads.
const recordHeaderLen = 8

// maxPayload bounds a single record so a corrupted length field can never
// drive recovery into a multi-gigabyte allocation.
const maxPayload = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WAL is a redo log of table append batches: length-prefixed, checksummed
// records, written whole and fsynced on a batching schedule. The write
// path is Append; the recovery path is Open, which replays the committed
// prefix and truncates a torn tail. All methods are safe for concurrent
// use.
//
// Failure semantics: a write that persists only part of a record is
// retried by completing the missing suffix — the record is length-prefixed,
// so the byte stream is position-independent to resume. If retries
// exhaust, the torn tail is truncated away (restoring the committed
// prefix) and the append fails cleanly; if even truncation fails, the log
// is poisoned and every later append errors until the process reopens it —
// an un-repairable tail must never take more records, because a reader
// would lose everything after the tear.
type WAL struct {
	mu        sync.Mutex
	fs        faultfs.FS
	f         faultfs.File
	path      string
	seq       uint64 // last committed sequence number
	committed int64  // bytes of fully committed records on disk
	sinceSync int
	syncEvery int
	policy    retry.Policy
	poisoned  error // non-nil: the tail is torn and could not be repaired

	lastSeq atomic.Uint64

	// Metric handles, nil until Instrument; nil-safe throughout.
	mAppends, mBytes  *obs.Counter
	mTruncations      *obs.Counter
	mRetryBackoffs    *obs.Counter
	mRetryExhaust     *obs.Counter
	mLastSeq          *obs.Gauge
	mDiskBytes        *obs.Gauge
	mFsyncSeconds     *obs.Histogram
	mRecoveredBatches *obs.Counter
	mTornTails        *obs.Counter
	mCompactions      *obs.Counter
}

// Open opens (creating if needed) the log at path, replays its committed
// records, and returns the opened WAL positioned after them together with
// the recovered batches in sequence order. A torn tail — an incomplete or
// checksum-failing final record, the signature of a crash or disk fault
// mid-write — is truncated away and counted in Recovery.TornTail; every
// record before it survives.
func Open(fs faultfs.FS, path string, opts Options) (*WAL, *Recovery, error) {
	if fs == nil {
		fs = faultfs.OS{}
	}
	rec, err := recover_(fs, path, opts.SkipThrough)
	if err != nil {
		return nil, nil, err
	}
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	syncEvery := opts.SyncEvery
	if syncEvery < 1 {
		syncEvery = 1
	}
	policy := opts.Retry
	if policy.Attempts == 0 {
		policy = retry.Default()
	}
	w := &WAL{
		fs: fs, f: f, path: path,
		seq: rec.LastSeq, committed: rec.CommittedBytes,
		syncEvery: syncEvery, policy: policy,
	}
	w.lastSeq.Store(rec.LastSeq)
	return w, rec, nil
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Batches are the committed batches in sequence order, excluding any
	// dropped by Options.SkipThrough.
	Batches []Batch
	// LastSeq is the last committed sequence number: the last frame's seq,
	// or Options.SkipThrough when the log holds nothing past it (0 for an
	// empty, uncheckpointed log).
	LastSeq uint64
	// SkippedFrames counts valid frames dropped because their seq was
	// already covered by Options.SkipThrough.
	SkippedFrames int
	// CommittedBytes is the on-disk length of the committed prefix.
	CommittedBytes int64
	// TornTail reports whether a torn tail was found and truncated.
	TornTail bool
	// TornBytes is how many trailing bytes the truncation discarded.
	TornBytes int64
}

// recover_ scans the log, validating each record's frame, checksum,
// payload encoding and sequence chain, and truncates the file back to the
// last valid record boundary when anything past it fails.
func recover_(fs faultfs.FS, path string, skipThrough uint64) (*Recovery, error) {
	rec := &Recovery{LastSeq: skipThrough}
	f, err := fs.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return rec, nil
		}
		return nil, fmt.Errorf("wal: opening %s for recovery: %w", path, err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var read int64     // total bytes consumed, valid or not
	var prevSeq uint64 // seq of the last valid frame (0: none yet)
	header := make([]byte, recordHeaderLen)
	var payload []byte
	for {
		n, herr := io.ReadFull(br, header)
		read += int64(n)
		if herr != nil {
			if herr != io.EOF {
				rec.TornTail = true
			}
			break
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > maxPayload {
			rec.TornTail = true
			break
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		n, perr := io.ReadFull(br, payload)
		read += int64(n)
		if perr != nil {
			rec.TornTail = true
			break
		}
		if crc32.Checksum(payload, crcTable) != sum {
			rec.TornTail = true
			break
		}
		b, derr := decodeBatch(payload)
		if derr != nil {
			rec.TornTail = true
			break
		}
		if prevSeq == 0 {
			// First frame: an uncompacted log starts at 1; a compacted one
			// starts anywhere up to skipThrough+1 (the snapshot covers the
			// rest). Anything else is a foreign or corrupted log.
			if b.Seq == 0 || b.Seq > skipThrough+1 {
				rec.TornTail = true
				break
			}
		} else if b.Seq != prevSeq+1 {
			rec.TornTail = true
			break
		}
		prevSeq = b.Seq
		rec.CommittedBytes += recordHeaderLen + int64(length)
		if b.Seq <= skipThrough {
			rec.SkippedFrames++
			continue
		}
		rec.Batches = append(rec.Batches, b)
		rec.LastSeq = b.Seq
	}
	// Anything buffered past the last committed record is tail garbage too.
	f.Close()
	if !rec.TornTail {
		// io.ReadFull hit clean EOF exactly at a record boundary only when
		// no header bytes were read; a partial header is a torn tail.
		rec.TornTail = read > rec.CommittedBytes
	}
	if rec.TornTail {
		// The scanner stopped mid-garbage; the file may extend beyond what
		// it consumed. Truncating to the committed prefix discards all of
		// it — size-agnostic, so we never need to stat through faultfs.
		rec.TornBytes = read - rec.CommittedBytes
		if err := fs.Truncate(path, rec.CommittedBytes); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	return rec, nil
}

// Instrument registers the WAL's metrics against reg (DESIGN.md §11 name
// schema): append count/bytes, fsync latency, last committed sequence,
// torn-tail truncations, and the shared retry counters. Call once at
// wiring time; an uninstrumented WAL records nothing.
func (w *WAL) Instrument(reg *obs.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.mAppends = reg.Counter("viewseeker_wal_appends_total")
	w.mBytes = reg.Counter("viewseeker_wal_bytes_total")
	w.mFsyncSeconds = reg.Histogram("viewseeker_wal_fsync_seconds", obs.DurationBuckets)
	w.mLastSeq = reg.Gauge("viewseeker_wal_last_seq")
	w.mDiskBytes = reg.Gauge("viewseeker_wal_bytes")
	w.mTruncations = reg.Counter("viewseeker_wal_truncations_total")
	w.mRecoveredBatches = reg.Counter("viewseeker_wal_recovered_batches_total")
	w.mTornTails = reg.Counter("viewseeker_wal_torn_tails_total")
	w.mCompactions = reg.Counter("viewseeker_wal_compactions_total")
	w.mRetryBackoffs = reg.Counter("viewseeker_retry_backoffs_total")
	w.mRetryExhaust = reg.Counter("viewseeker_retry_exhausted_total")
	w.mLastSeq.Set(int64(w.seq))
	w.mDiskBytes.Set(w.committed)
}

// RecordRecovery feeds one Open's Recovery into the instrumented counters,
// so restart behaviour is visible at /metricz.
func (w *WAL) RecordRecovery(rec *Recovery) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.mRecoveredBatches.Add(int64(len(rec.Batches)))
	if rec.TornTail {
		w.mTornTails.Inc()
	}
}

// Seq returns the last committed sequence number.
func (w *WAL) Seq() uint64 { return w.lastSeq.Load() }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Bytes returns the on-disk size of the committed log in bytes. Replay
// cost is proportional to it, which makes it the natural checkpoint
// trigger.
func (w *WAL) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.committed
}

// Append commits one batch of rows and returns its sequence number. The
// record is written as a single frame and fsynced per the SyncEvery
// schedule; on return the batch either is durable (or scheduled within the
// current sync window) or the log is exactly as it was — a failed append
// never leaves a half-record for recovery to trip over (see WAL failure
// semantics).
func (w *WAL) Append(rows [][]dataset.Value) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if w.poisoned != nil {
		return 0, fmt.Errorf("wal: log has an unrepaired torn tail (reopen to recover): %w", w.poisoned)
	}
	if len(rows) == 0 {
		return 0, fmt.Errorf("wal: empty batch")
	}
	seq := w.seq + 1
	payload, err := encodeBatch(Batch{Seq: seq, Rows: rows})
	if err != nil {
		return 0, err
	}
	frame := make([]byte, recordHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[recordHeaderLen:], payload)

	policy := w.policy
	policy.Backoffs = w.mRetryBackoffs
	policy.Exhausted = w.mRetryExhaust
	// written tracks how many frame bytes reached the file across retries:
	// a torn write persists a prefix, so the retry completes the suffix
	// rather than rewriting (and thereby corrupting) the record.
	written := 0
	err = policy.Do(context.Background(), func() error {
		n, werr := w.f.Write(frame[written:])
		written += n
		return werr
	})
	if err != nil {
		if written > 0 {
			// Retries exhausted mid-record: chop the partial frame so the
			// log ends at the committed prefix again.
			if terr := w.fs.Truncate(w.path, w.committed); terr != nil {
				w.poisoned = terr
				return 0, fmt.Errorf("wal: append tore at %d/%d bytes and truncation failed: %w",
					written, len(frame), terr)
			}
			w.mTruncations.Inc()
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.seq = seq
	w.committed += int64(len(frame))
	w.lastSeq.Store(seq)
	w.mAppends.Inc()
	w.mBytes.Add(int64(len(frame)))
	w.mLastSeq.Set(int64(seq))
	w.mDiskBytes.Set(w.committed)
	w.sinceSync++
	if w.sinceSync >= w.syncEvery {
		if err := w.syncLocked(); err != nil {
			// The record is written but not yet durable; the next sync (or
			// Close) retries. Surface the error — callers decide whether
			// lost durability fails the append.
			return seq, fmt.Errorf("wal: fsync after append: %w", err)
		}
	}
	return seq, nil
}

// Sync flushes committed records to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	start := time.Now()
	err := w.f.Sync()
	w.mFsyncSeconds.ObserveDuration(time.Since(start))
	if err == nil {
		w.sinceSync = 0
	}
	return err
}

// CompactThrough drops every committed record with sequence number <= seq
// from the log: the caller has persisted a snapshot covering them, so
// replay no longer needs them. When seq covers the whole log the file is
// truncated to zero in place (the open O_APPEND handle stays valid — later
// appends continue at the new end); otherwise the retained suffix is
// rewritten into a temp file, fsynced, and atomically renamed over the
// log. The sequence chain is NOT reset: the next append still gets the
// next seq, and recovery accepts a log starting past 1 when told the
// snapshot's coverage via Options.SkipThrough.
func (w *WAL) CompactThrough(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if w.poisoned != nil {
		return fmt.Errorf("wal: log has an unrepaired torn tail (reopen to recover): %w", w.poisoned)
	}
	if seq >= w.seq {
		if err := w.fs.Truncate(w.path, 0); err != nil {
			return fmt.Errorf("wal: compacting %s: %w", w.path, err)
		}
		w.committed = 0
		w.sinceSync = 0
		w.mCompactions.Inc()
		w.mDiskBytes.Set(0)
		return nil
	}
	kept, err := w.rewriteRetained(seq)
	if err != nil {
		return err
	}
	w.committed = kept
	w.sinceSync = 0
	w.mCompactions.Inc()
	w.mDiskBytes.Set(kept)
	return nil
}

// rewriteRetained copies the frames with seq > through into a temp file
// and swaps it in for the log, returning the retained byte count. Called
// with w.mu held. The committed prefix is valid by construction (Open
// validated it and every later frame was written whole under the mutex),
// so frames are copied raw after a bounds check plus seq filter.
func (w *WAL) rewriteRetained(through uint64) (int64, error) {
	src, err := w.fs.Open(w.path)
	if err != nil {
		return 0, fmt.Errorf("wal: opening %s for compaction: %w", w.path, err)
	}
	defer src.Close()
	tmp, err := w.fs.CreateTemp(filepath.Dir(w.path), filepath.Base(w.path)+".compact-*")
	if err != nil {
		return 0, fmt.Errorf("wal: compaction temp file: %w", err)
	}
	tmpName := tmp.Name()
	// Removing the temp is a no-op after a successful rename.
	defer w.fs.Remove(tmpName)
	br := bufio.NewReaderSize(src, 1<<16)
	bw := bufio.NewWriterSize(tmp, 1<<16)
	header := make([]byte, recordHeaderLen)
	var payload []byte
	var read, kept int64
	for read < w.committed {
		if _, err := io.ReadFull(br, header); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("wal: compaction read: %w", err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		if length < 16 || length > maxPayload {
			tmp.Close()
			return 0, fmt.Errorf("wal: compaction found implausible frame length %d", length)
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("wal: compaction read: %w", err)
		}
		read += recordHeaderLen + int64(length)
		if binary.LittleEndian.Uint64(payload[0:8]) <= through {
			continue
		}
		if _, err := bw.Write(header); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("wal: compaction write: %w", err)
		}
		if _, err := bw.Write(payload); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("wal: compaction write: %w", err)
		}
		kept += recordHeaderLen + int64(length)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("wal: compaction flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("wal: compaction fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("wal: compaction close: %w", err)
	}
	// Swap: close the append handle, rename, reopen. Reopening the same
	// path succeeds whether or not the rename did, so the log stays
	// appendable either way.
	w.f.Close()
	renameErr := w.fs.Rename(tmpName, w.path)
	f, openErr := w.fs.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if openErr != nil {
		w.f = nil
		return 0, fmt.Errorf("wal: reopening %s after compaction: %w", w.path, openErr)
	}
	w.f = f
	if renameErr != nil {
		return 0, fmt.Errorf("wal: swapping compacted log: %w", renameErr)
	}
	return kept, nil
}

// Close syncs and closes the log. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// encodeBatch serialises a batch payload: seq, row/column counts, then
// rows row-major with one kind tag per value. The encoding is
// schema-independent — recovery can decode without the table — and every
// variable-length field is length-prefixed, following the
// internal/store fingerprint conventions.
func encodeBatch(b Batch) ([]byte, error) {
	if len(b.Rows) == 0 {
		return nil, fmt.Errorf("wal: empty batch")
	}
	width := len(b.Rows[0])
	buf := make([]byte, 0, 16+len(b.Rows)*width*9)
	buf = binary.LittleEndian.AppendUint64(buf, b.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Rows)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(width))
	for _, row := range b.Rows {
		if len(row) != width {
			return nil, fmt.Errorf("wal: ragged batch: row has %d values, want %d", len(row), width)
		}
		for _, v := range row {
			switch {
			case v.IsNull():
				buf = append(buf, tagNull)
			case v.Kind == dataset.KindInt:
				buf = append(buf, tagInt)
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I))
			case v.Kind == dataset.KindFloat:
				buf = append(buf, tagFloat)
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
			case v.Kind == dataset.KindString:
				buf = append(buf, tagString)
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.S)))
				buf = append(buf, v.S...)
			case v.Kind == dataset.KindBool:
				buf = append(buf, tagBool)
				if v.B {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			default:
				return nil, fmt.Errorf("wal: cannot encode value kind %v", v.Kind)
			}
		}
	}
	return buf, nil
}

// decodeBatch reverses encodeBatch. Every read is bounds-checked so a
// corrupted payload yields an error, never a panic.
func decodeBatch(p []byte) (Batch, error) {
	var b Batch
	if len(p) < 16 {
		return b, fmt.Errorf("wal: batch payload too short (%d bytes)", len(p))
	}
	b.Seq = binary.LittleEndian.Uint64(p[0:8])
	nrows := int(binary.LittleEndian.Uint32(p[8:12]))
	width := int(binary.LittleEndian.Uint32(p[12:16]))
	if nrows <= 0 || width <= 0 || nrows > maxPayload || width > 1<<16 {
		return b, fmt.Errorf("wal: implausible batch shape %d×%d", nrows, width)
	}
	off := 16
	b.Rows = make([][]dataset.Value, nrows)
	for r := range b.Rows {
		row := make([]dataset.Value, width)
		for c := range row {
			if off >= len(p) {
				return b, fmt.Errorf("wal: batch payload truncated at row %d", r)
			}
			tag := p[off]
			off++
			switch tag {
			case tagNull:
				row[c] = dataset.Null
			case tagInt:
				if off+8 > len(p) {
					return b, fmt.Errorf("wal: batch payload truncated in int value")
				}
				row[c] = dataset.Int(int64(binary.LittleEndian.Uint64(p[off:])))
				off += 8
			case tagFloat:
				if off+8 > len(p) {
					return b, fmt.Errorf("wal: batch payload truncated in float value")
				}
				row[c] = dataset.Float(math.Float64frombits(binary.LittleEndian.Uint64(p[off:])))
				off += 8
			case tagString:
				if off+4 > len(p) {
					return b, fmt.Errorf("wal: batch payload truncated in string length")
				}
				n := int(binary.LittleEndian.Uint32(p[off:]))
				off += 4
				if n < 0 || off+n > len(p) {
					return b, fmt.Errorf("wal: batch payload truncated in string value")
				}
				row[c] = dataset.StringVal(string(p[off : off+n]))
				off += n
			case tagBool:
				if off >= len(p) {
					return b, fmt.Errorf("wal: batch payload truncated in bool value")
				}
				row[c] = dataset.Bool(p[off] == 1)
				off++
			default:
				return b, fmt.Errorf("wal: unknown value tag %d", tag)
			}
		}
		b.Rows[r] = row
	}
	if off != len(p) {
		return b, fmt.Errorf("wal: %d trailing bytes after batch payload", len(p)-off)
	}
	return b, nil
}
