// Package wal is the redo log behind live tables: every append batch is
// written as one length-prefixed, CRC-32C-checksummed record before it is
// applied in memory, so a crash can lose at most the batches inside the
// current fsync window and can never corrupt what came before.
//
// # Record format
//
// A record is `u32 payloadLen | u32 crc32c(payload) | payload`, all
// little-endian. The payload carries the batch sequence number, the
// row/column counts, and the rows row-major with a one-byte kind tag per
// value (null/int/float/string/bool) — schema-independent, so recovery
// decodes without the table in hand. Sequence numbers start at 1 and
// increase by exactly 1 per committed batch.
//
// # Recovery contract
//
// Open replays the log front to back, stopping at the first record that
// fails any check (frame length sanity, checksum, payload decode, sequence
// chain) and truncating the file back to the last good boundary. The
// committed prefix is returned as ordered batches; the torn tail — the
// signature of a kill mid-write — is discarded and counted. Replaying N
// batches over the base table always yields the same table a clean run of
// the same N appends would have, which is what the live-table layer's
// fault-injection tests pin.
//
// # Compaction
//
// CompactThrough(seq) drops every record at or below seq, rewriting the
// retained suffix atomically (temp file + rename; an up-to-date log is
// simply truncated to empty). A compacted log no longer starts at
// sequence 1, so it must be opened with Options.SkipThrough set to the
// compaction point — the caller (internal/live) records it in its
// checkpoint snapshot. During recovery, frames at or below SkipThrough
// are fully validated but dropped into Recovery.SkippedFrames instead of
// replayed; that makes recovery idempotent when a crash lands between
// "snapshot durable" and "log compacted", when snapshot and full log
// briefly coexist. Opening a compacted log without its SkipThrough is
// reported as a torn tail, never replayed against the wrong base.
//
// # Failure semantics
//
// Append writes the whole record in one Write and retries torn writes by
// completing the missing suffix (the same byte-precise resume the store
// journal uses). If retries exhaust, the partial frame is truncated away
// and the append fails with the log intact; if even truncation fails, the
// log poisons itself and refuses further appends until reopened — an
// unrepaired tear must not be buried under new records. Fsyncs batch per
// Options.SyncEvery and are timed into viewseeker_wal_fsync_seconds.
//
// Observability: Instrument registers viewseeker_wal_* counters, the
// last-sequence gauge, and the fsync histogram per the DESIGN.md §11
// schema; uninstrumented WALs pay nothing (nil-safe handles).
package wal
