// Package loadgen drives synthetic interactive sessions against a
// serve-compatible HTTP API — create, a fixed number of feedback steps,
// then top-k — from a bounded worker pool, and reports per-route
// p50/p95/p99 latency (estimated from internal/obs histograms with the
// server's own bucket layout) plus the success / shed / error split.
// 429 responses are retried honouring Retry-After: against a
// memory-budgeted server (DESIGN.md §16) shedding is expected behaviour,
// so only 5xx and transport failures count as errors. cmd/loadgen is the
// CLI wrapper; cmd/bench -serve uses the same engine to produce the
// tracked BENCH_serve.json.
package loadgen
