package loadgen

import (
	"net/http/httptest"
	"testing"
	"time"

	"viewseeker/internal/dataset"
	"viewseeker/internal/server"
)

// TestSmokeAgainstInProcessServer is the loadgen smoke: 50 sessions
// against an in-process server whose budget fits only a fraction of the
// population, so the run exercises creation, eviction, rehydration and
// (possibly) shedding — and must end with zero 5xx, zero transport
// errors, and the resident gauge under budget.
func TestSmokeAgainstInProcessServer(t *testing.T) {
	table := dataset.GenerateDIAB(dataset.DIABConfig{Rows: 1000, Seed: 51})
	srv := server.NewWithOptions(server.Options{SessionBudgetBytes: 4 << 20}, table)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := Run(Config{
		BaseURL:     ts.URL,
		Sessions:    50,
		Concurrency: 8,
		Feedback:    3,
		Table:       "diab",
		Query:       dataset.DIABQuery,
		K:           3,
		Seed:        7,
		RetryCap:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatalf("no sessions completed: %+v", rep)
	}
	if rep.Errors5xx != 0 || rep.TransportErrors != 0 {
		t.Fatalf("run had hard failures: %+v", rep)
	}
	if rep.Completed+rep.Shed != int64(rep.Sessions) {
		t.Fatalf("completed %d + shed %d != sessions %d (4xx leak?): %+v",
			rep.Completed, rep.Shed, rep.Sessions, rep)
	}
	for _, route := range []string{"create", "feedback", "top"} {
		rs, ok := rep.Routes[route]
		if !ok || rs.Count == 0 {
			t.Fatalf("route %q missing from report: %+v", route, rep.Routes)
		}
		if rs.P50Ms <= 0 || rs.P99Ms < rs.P50Ms {
			t.Errorf("route %q quantiles inconsistent: %+v", route, rs)
		}
	}

	snap := srv.Metrics().Snapshot()
	if budget := float64(4 << 20); snap["viewseeker_session_resident_bytes"] > budget {
		t.Errorf("resident bytes %v over budget %v after the run settled",
			snap["viewseeker_session_resident_bytes"], budget)
	}
}
