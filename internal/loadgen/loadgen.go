package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"viewseeker/internal/obs"
)

// Config shapes one load run against a serve-compatible API.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests; nil uses a dedicated client with a
	// 30-second timeout.
	Client *http.Client
	// Sessions is the total session population to drive (each runs
	// create → Feedback labelling steps → top-k).
	Sessions int
	// Concurrency is the worker-pool width (default 8): how many sessions
	// are in flight at once.
	Concurrency int
	// Feedback is the number of labelling steps per session (default 5).
	Feedback int
	// Table, Query, K and Seed parameterise every created session; the
	// per-session seed is Seed + the session index, so sessions are
	// distinct but the whole run is reproducible.
	Table string
	Query string
	K     int
	Seed  int64
	// Revisit adds a second pass: after every session has run, each
	// completed session is touched again with Revisit more feedback steps
	// and a top-k. Against a budgeted server most of the population has
	// been evicted by then, so the revisit pass is what exercises
	// journal-replay rehydration (0 = no second pass).
	Revisit int
	// MaxRetries bounds how many times one request is retried after a 429
	// before the session counts as shed (default 8). Retries honour the
	// server's Retry-After header, capped by RetryCap.
	MaxRetries int
	// RetryCap caps the per-retry sleep (default 1s). Load tests set it
	// low so a shedding server is probed frequently instead of idling.
	RetryCap time.Duration
}

// RouteStats is one route's latency summary, quantiles estimated from an
// internal/obs histogram (the same bucket layout the server exports).
type RouteStats struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// Report is a run's outcome — the "requests succeed or shed, never fail"
// acceptance surface plus per-route latency.
type Report struct {
	// Sessions is the configured population; Completed counts sessions
	// that finished every step (possibly after 429 retries); Shed counts
	// sessions abandoned because a request stayed 429 past MaxRetries.
	Sessions  int   `json:"sessions"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	// Responses429 counts individual 429 responses (each also slept per
	// Retry-After); Errors4xx / Errors5xx / TransportErrors count
	// everything else that is not a 2xx — an acceptance run requires
	// Errors5xx == 0 and TransportErrors == 0.
	Responses429    int64 `json:"responses_429"`
	Errors4xx       int64 `json:"errors_4xx"`
	Errors5xx       int64 `json:"errors_5xx"`
	TransportErrors int64 `json:"transport_errors"`
	// ElapsedSeconds is wall clock for the whole run; Routes maps route
	// name (create / feedback / top) to its latency summary.
	ElapsedSeconds float64               `json:"elapsed_seconds"`
	Routes         map[string]RouteStats `json:"routes"`
}

type runner struct {
	cfg    Config
	client *http.Client

	mu    sync.Mutex
	hists map[string]*obs.Histogram
	// live records completed sessions (id + view-space size) for the
	// revisit pass.
	live []liveSession

	completed, shed             atomic.Int64
	r429, e4xx, e5xx, transport atomic.Int64
}

type liveSession struct {
	id       string
	numViews int
	index    int
}

func (r *runner) hist(route string) *obs.Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[route]
	if h == nil {
		h = obs.NewRegistry().Histogram(route, obs.DurationBuckets)
		r.hists[route] = h
	}
	return h
}

// Run drives Config.Sessions synthetic sessions through the API and
// reports per-route latency and the success/shed/error split. An error is
// returned only for misconfiguration; server-side failures are counted,
// not fatal, so a shedding server still yields a full report.
func Run(cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("loadgen: Sessions must be positive")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Feedback <= 0 {
		cfg.Feedback = 5
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = time.Second
	}
	r := &runner{cfg: cfg, client: cfg.Client, hists: make(map[string]*obs.Histogram)}
	if r.client == nil {
		r.client = &http.Client{Timeout: 30 * time.Second}
	}

	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Sessions {
					return
				}
				r.session(i)
			}
		}()
	}
	wg.Wait()

	if cfg.Revisit > 0 {
		// Second pass: return to every completed session. Against a
		// budgeted server most of them have been evicted since their last
		// touch, so this is the rehydration workload.
		var nextLive atomic.Int64
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(nextLive.Add(1)) - 1
					if i >= len(r.live) {
						return
					}
					r.revisit(r.live[i])
				}
			}()
		}
		wg.Wait()
	}

	rep := &Report{
		Sessions:        cfg.Sessions,
		Completed:       r.completed.Load(),
		Shed:            r.shed.Load(),
		Responses429:    r.r429.Load(),
		Errors4xx:       r.e4xx.Load(),
		Errors5xx:       r.e5xx.Load(),
		TransportErrors: r.transport.Load(),
		ElapsedSeconds:  time.Since(start).Seconds(),
		Routes:          make(map[string]RouteStats),
	}
	for route, h := range r.hists {
		rep.Routes[route] = RouteStats{
			Count: h.Count(),
			P50Ms: h.Quantile(0.50) * 1000,
			P95Ms: h.Quantile(0.95) * 1000,
			P99Ms: h.Quantile(0.99) * 1000,
		}
	}
	return rep, nil
}

// session drives one create → feedback* → top conversation. Every step
// retries on 429 (the server shedding is expected behaviour under an
// undersized budget); any other failure abandons the session.
func (r *runner) session(i int) {
	var created struct {
		ID       string `json:"id"`
		NumViews int    `json:"numViews"`
	}
	ok := r.do("create", "POST", "/api/sessions", map[string]any{
		"table": r.cfg.Table, "query": r.cfg.Query, "k": r.cfg.K,
		"seed": r.cfg.Seed + int64(i),
	}, &created)
	if !ok {
		return
	}
	if created.NumViews == 0 {
		r.e5xx.Add(1) // a created session with no views is a server bug
		return
	}
	base := "/api/sessions/" + created.ID
	for f := 0; f < r.cfg.Feedback; f++ {
		// Deterministic per-session labelling walk over the view space.
		view := (i*37 + f*13) % created.NumViews
		if !r.do("feedback", "POST", base+"/feedback", map[string]any{
			"index": view, "label": float64((i+f)%2) * 1.0,
		}, nil) {
			return
		}
	}
	if !r.do("top", "GET", base+"/top", nil, nil) {
		return
	}
	r.completed.Add(1)
	if r.cfg.Revisit > 0 {
		r.mu.Lock()
		r.live = append(r.live, liveSession{id: created.ID, numViews: created.NumViews, index: i})
		r.mu.Unlock()
	}
}

// revisit returns to a completed (and, under budget pressure, likely
// evicted) session for Config.Revisit more labelling steps and a top-k.
// Failures here are already counted by do; a shed revisit does not
// un-complete the session.
func (r *runner) revisit(s liveSession) {
	base := "/api/sessions/" + s.id
	for f := 0; f < r.cfg.Revisit; f++ {
		view := (s.index*17 + (r.cfg.Feedback+f)*13) % s.numViews
		if !r.do("feedback", "POST", base+"/feedback", map[string]any{
			"index": view, "label": float64((s.index+f)%2) * 1.0,
		}, nil) {
			return
		}
	}
	r.do("top", "GET", base+"/top", nil, nil)
}

// do issues one request with 429-retry, recording its latency per
// attempt. Returns false when the session should be abandoned.
func (r *runner) do(route, method, path string, body, out any) bool {
	for attempt := 0; ; attempt++ {
		var rdr io.Reader = http.NoBody
		if body != nil {
			b, err := json.Marshal(body)
			if err != nil {
				r.transport.Add(1)
				return false
			}
			rdr = bytes.NewReader(b)
		}
		req, err := http.NewRequest(method, r.cfg.BaseURL+path, rdr)
		if err != nil {
			r.transport.Add(1)
			return false
		}
		start := time.Now()
		res, err := r.client.Do(req)
		elapsed := time.Since(start)
		if err != nil {
			r.transport.Add(1)
			return false
		}
		r.hist(route).ObserveDuration(elapsed)
		switch {
		case res.StatusCode < 300:
			var derr error
			if out != nil {
				derr = json.NewDecoder(res.Body).Decode(out)
			}
			res.Body.Close()
			if derr != nil {
				r.transport.Add(1)
				return false
			}
			return true
		case res.StatusCode == http.StatusTooManyRequests:
			r.r429.Add(1)
			delay := retryAfter(res)
			res.Body.Close()
			if attempt >= r.cfg.MaxRetries {
				r.shed.Add(1)
				return false
			}
			if delay > r.cfg.RetryCap {
				delay = r.cfg.RetryCap
			}
			time.Sleep(delay)
		case res.StatusCode >= 500:
			res.Body.Close()
			r.e5xx.Add(1)
			return false
		default:
			res.Body.Close()
			r.e4xx.Add(1)
			return false
		}
	}
}

// retryAfter parses the Retry-After hint (seconds form), defaulting to
// 50ms so a header-less 429 still backs off.
func retryAfter(res *http.Response) time.Duration {
	if s := res.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 50 * time.Millisecond
}
