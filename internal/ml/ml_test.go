package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScalerStandardises(t *testing.T) {
	rows := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	s, err := FitScaler(rows)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean[0] != 3 || s.Mean[1] != 10 {
		t.Errorf("means = %v", s.Mean)
	}
	std := s.TransformAll(rows)
	// Column 0: mean 0, unit variance. Column 1 is constant: centred only.
	var sum, sq float64
	for _, r := range std {
		sum += r[0]
		sq += r[0] * r[0]
		if r[1] != 0 {
			t.Errorf("constant column should centre to 0, got %v", r[1])
		}
	}
	if math.Abs(sum) > 1e-12 || math.Abs(sq/3-1) > 1e-12 {
		t.Errorf("column 0 not standardised: sum=%v meanSq=%v", sum, sq/3)
	}
}

func TestScalerErrors(t *testing.T) {
	if _, err := FitScaler(nil); err == nil {
		t.Error("expected error on empty data")
	}
	if _, err := FitScaler([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("expected error on ragged data")
	}
}

func TestLinearRegressionRecoversExactTarget(t *testing.T) {
	// y = 0.3·x0 + 0.7·x2 + 0.1, the shape of the paper's ideal utility
	// functions (Eq. 4). With >k well-spread samples the fit is exact.
	rng := rand.New(rand.NewSource(1))
	var rows [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		r := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		rows = append(rows, r)
		y = append(y, 0.3*r[0]+0.7*r[2]+0.1)
	}
	m := NewLinearRegression(1e-9)
	if err := m.Fit(rows, y); err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if math.Abs(m.Predict(r)-y[i]) > 1e-6 {
			t.Fatalf("prediction %d off: %v vs %v", i, m.Predict(r), y[i])
		}
	}
	w, b := m.Weights()
	if math.Abs(w[0]-0.3) > 1e-6 || math.Abs(w[1]) > 1e-6 || math.Abs(w[2]-0.7) > 1e-6 {
		t.Errorf("recovered weights = %v, want [0.3 0 0.7]", w)
	}
	if math.Abs(b-0.1) > 1e-6 {
		t.Errorf("intercept = %v, want 0.1", b)
	}
}

func TestLinearRegressionUnderdetermined(t *testing.T) {
	// Fewer labels than features: ridge must still produce a usable fit.
	rows := [][]float64{{1, 0, 0, 0, 0}, {0, 1, 0, 0, 0}}
	y := []float64{1, 0}
	m := NewLinearRegression(1e-6)
	if err := m.Fit(rows, y); err != nil {
		t.Fatal(err)
	}
	if !m.Fitted() {
		t.Fatal("should be fitted")
	}
	if m.Predict(rows[0]) <= m.Predict(rows[1]) {
		t.Error("fit should at least order the two training points")
	}
}

func TestLinearRegressionSingleRow(t *testing.T) {
	m := NewLinearRegression(1e-6)
	if err := m.Fit([][]float64{{1, 2}}, []float64{0.7}); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{1, 2}); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("single-row fit predicts %v, want 0.7 (the mean)", got)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	m := NewLinearRegression(0)
	if err := m.Fit(nil, nil); err == nil {
		t.Error("expected error on empty fit")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected error on length mismatch")
	}
	if got := m.Predict([]float64{1}); got != 0 {
		t.Errorf("unfitted Predict = %v, want 0", got)
	}
	if w, _ := m.Weights(); w != nil {
		t.Error("unfitted Weights should be nil")
	}
}

func TestLinearRegressionPropertyExactRecovery(t *testing.T) {
	// For any random 4-feature linear target, 30 samples recover it.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		b := rng.NormFloat64()
		var rows [][]float64
		var y []float64
		for i := 0; i < 30; i++ {
			r := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			rows = append(rows, r)
			s := b
			for j := range w {
				s += w[j] * r[j]
			}
			y = append(y, s)
		}
		m := NewLinearRegression(1e-10)
		if err := m.Fit(rows, y); err != nil {
			return false
		}
		got, gotB := m.Weights()
		for j := range w {
			if math.Abs(got[j]-w[j]) > 1e-5 {
				return false
			}
		}
		return math.Abs(gotB-b) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLogisticRegressionSeparable(t *testing.T) {
	// Linearly separable along x0.
	var rows [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		x0 := rng.NormFloat64()
		rows = append(rows, []float64{x0, rng.NormFloat64()})
		if x0 > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m := NewLogisticRegression()
	if err := m.Fit(rows, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, r := range rows {
		p := m.Prob(r)
		if (p > 0.5) == (y[i] == 1) {
			correct++
		}
	}
	if correct < 95 {
		t.Errorf("accuracy = %d/100 on separable data", correct)
	}
}

func TestLogisticUncertaintyPeaksAtBoundary(t *testing.T) {
	rows := [][]float64{{-2}, {-1}, {1}, {2}}
	y := []float64{0, 0, 1, 1}
	m := NewLogisticRegression()
	if err := m.Fit(rows, y); err != nil {
		t.Fatal(err)
	}
	uMid := m.Uncertainty([]float64{0})
	uFar := m.Uncertainty([]float64{3})
	if uMid <= uFar {
		t.Errorf("uncertainty at boundary (%v) should exceed far point (%v)", uMid, uFar)
	}
	if uMid > 0.5 {
		t.Errorf("uncertainty must be ≤ 0.5, got %v", uMid)
	}
}

func TestLogisticSingleClass(t *testing.T) {
	m := NewLogisticRegression()
	if err := m.Fit([][]float64{{1}, {2}}, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if p := m.Prob([]float64{1.5}); p <= 0.5 {
		t.Errorf("single positive class should predict p>0.5, got %v", p)
	}
}

func TestLogisticRejectsNonBinaryLabels(t *testing.T) {
	m := NewLogisticRegression()
	if err := m.Fit([][]float64{{1}}, []float64{0.3}); err == nil {
		t.Fatal("expected error for non-binary label")
	}
}

func TestLogisticUnfittedIsMaximallyUncertain(t *testing.T) {
	m := NewLogisticRegression()
	if p := m.Prob([]float64{1}); p != 0.5 {
		t.Errorf("unfitted Prob = %v, want 0.5", p)
	}
	if u := m.Uncertainty([]float64{1}); u != 0.5 {
		t.Errorf("unfitted Uncertainty = %v, want 0.5", u)
	}
}

func TestSigmoidStability(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Errorf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Errorf("sigmoid(-1000) = %v", s)
	}
	if s := sigmoid(0); s != 0.5 {
		t.Errorf("sigmoid(0) = %v", s)
	}
	f := func(z float64) bool {
		if math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		s := sigmoid(z)
		return s >= 0 && s <= 1 && math.Abs(sigmoid(-z)-(1-s)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
