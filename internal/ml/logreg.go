package ml

import (
	"fmt"
	"math"

	"viewseeker/internal/linalg"
)

// LogisticRegression is the uncertainty estimator: a binary classifier
// whose predicted probability p(y=1|x) feeds the least-confidence query
// strategy (Eq. 6). It is trained by full-batch gradient descent with L2
// regularisation on standardised features.
type LogisticRegression struct {
	// LearningRate is the gradient step size (default 0.5 when zero).
	LearningRate float64
	// Epochs bounds the number of full-batch passes (default 500 when zero).
	Epochs int
	// Lambda is the L2 penalty (default 1e-3 when zero or negative).
	Lambda float64
	// Tol stops training early when the max weight update falls below it
	// (default 1e-8 when zero).
	Tol float64
	// ExternalScaler, when set, standardises with caller-fitted statistics
	// (see ml.LinearRegression.ExternalScaler for why transductive callers
	// want whole-space statistics).
	ExternalScaler *Scaler
	// WarmStart seeds each Fit's gradient descent from the previously
	// fitted weights instead of zero. With a near-convex objective and one
	// new label per retrain, the previous optimum is a few steps from the
	// new one, so warm-started fits converge in far fewer epochs. The
	// mechanism is fully deterministic — identical previous state and data
	// give identical results — but it makes Fit depend on the model's own
	// history, so callers whose outputs must be reproducible from inputs
	// alone (session replay) either keep it off or confine it to within
	// one call's lifetime (see active.Committee).
	WarmStart bool

	weights []float64
	bias    float64
	scaler  *Scaler

	// stdBuf is the reused standardisation buffer (see TransformAllInto);
	// epochsRun records the last Fit's epoch count for observability.
	stdBuf    [][]float64
	epochsRun int
}

// NewLogisticRegression returns a classifier with library defaults.
func NewLogisticRegression() *LogisticRegression {
	return &LogisticRegression{LearningRate: 0.5, Epochs: 500, Lambda: 1e-3, Tol: 1e-8}
}

func sigmoid(z float64) float64 {
	// Numerically stable split.
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Fit trains on rows with binary labels (0 or 1). At least one row is
// required; a single-class dataset is legal and yields a confident constant
// classifier, which the cold-start stage relies on.
func (m *LogisticRegression) Fit(rows [][]float64, y []float64) error {
	if len(rows) == 0 {
		return fmt.Errorf("ml: logistic regression needs at least one labelled row")
	}
	if len(rows) != len(y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(rows), len(y))
	}
	for i, v := range y {
		if v != 0 && v != 1 {
			return fmt.Errorf("ml: label %d is %v, want 0 or 1", i, v)
		}
	}
	lr := m.LearningRate
	if lr <= 0 {
		lr = 0.5
	}
	epochs := m.Epochs
	if epochs <= 0 {
		epochs = 500
	}
	lambda := m.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	tol := m.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	scaler := m.ExternalScaler
	if scaler == nil {
		var err error
		scaler, err = FitScaler(rows)
		if err != nil {
			return err
		}
	}
	m.stdBuf = scaler.TransformAllInto(rows, m.stdBuf)
	std := m.stdBuf
	k := len(std[0])
	w := make([]float64, k)
	b := 0.0
	if m.WarmStart && len(m.weights) == k {
		copy(w, m.weights)
		b = m.bias
	}
	n := float64(len(std))
	grad := make([]float64, k)
	epochsRun := 0
	for epoch := 0; epoch < epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		gb := 0.0
		for i, r := range std {
			p := sigmoid(b + linalg.Dot(w, r))
			d := p - y[i]
			gb += d
			linalg.AXPY(d, r, grad)
		}
		maxStep := 0.0
		for j := range w {
			g := grad[j]/n + lambda*w[j]
			step := lr * g
			w[j] -= step
			if s := math.Abs(step); s > maxStep {
				maxStep = s
			}
		}
		b -= lr * gb / n
		epochsRun++
		if maxStep < tol && math.Abs(lr*gb/n) < tol {
			break
		}
	}
	m.weights = w
	m.bias = b
	m.scaler = scaler
	m.epochsRun = epochsRun
	return nil
}

// SeedFrom copies another model's fitted weights in as this model's
// warm-start seed: the next Fit with WarmStart set starts its descent from
// o's optimum instead of zero. It does not make the model fitted — Prob
// still returns 0.5 until Fit runs — and it is how active.Committee chains
// bootstrap members within one selection without sharing model state
// across calls. A nil or unfitted o is a no-op.
func (m *LogisticRegression) SeedFrom(o *LogisticRegression) {
	if o == nil || len(o.weights) == 0 {
		return
	}
	m.weights = append(m.weights[:0], o.weights...)
	m.bias = o.bias
}

// EpochsRun returns the number of full-batch passes the last Fit took —
// the observable effect of warm starting (a warm fit near the previous
// optimum converges in a handful of epochs).
func (m *LogisticRegression) EpochsRun() int { return m.epochsRun }

// Fitted reports whether Fit has succeeded at least once.
func (m *LogisticRegression) Fitted() bool { return m.scaler != nil }

// Prob returns p(y=1|x). Before Fit it returns 0.5 — maximal uncertainty,
// which makes an untrained uncertainty estimator equivalent to random
// selection. Like LinearRegression.Predict it standardises inline with
// Dot's accumulation order, so it allocates nothing and matches the
// allocating form bit for bit.
func (m *LogisticRegression) Prob(row []float64) float64 {
	if m.scaler == nil {
		return 0.5
	}
	mean, std := m.scaler.Mean, m.scaler.Std
	s := 0.0
	for j, w := range m.weights {
		s += w * ((row[j] - mean[j]) / std[j])
	}
	return sigmoid(m.bias + s)
}

// Uncertainty returns the least-confidence score of Eq. 6:
// 1 − p(ŷ|x) where ŷ is the predicted class. It is maximised (0.5) when
// p(y=1|x) = 0.5.
func (m *LogisticRegression) Uncertainty(row []float64) float64 {
	p := m.Prob(row)
	if p < 0.5 {
		return p
	}
	return 1 - p
}
