package ml

import (
	"fmt"
	"math"
)

// Scaler standardises feature columns to zero mean and unit variance.
// Columns with zero variance are passed through centred only, so constant
// features cannot blow up the transform.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes the per-column statistics of the design rows.
func FitScaler(rows [][]float64) (*Scaler, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("ml: cannot fit scaler on empty data")
	}
	k := len(rows[0])
	s := &Scaler{Mean: make([]float64, k), Std: make([]float64, k)}
	for _, r := range rows {
		if len(r) != k {
			return nil, fmt.Errorf("ml: ragged design row (%d cols, want %d)", len(r), k)
		}
		for j, v := range r {
			s.Mean[j] += v
		}
	}
	n := float64(len(rows))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, r := range rows {
		for j, v := range r {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		// Columns that are constant — or nearly so relative to their
		// magnitude — pass through centred only. Without the relative
		// test, a feature like a p-value score that saturates at 1.0 with
		// a 1e-8 spread becomes a huge-leverage direction after
		// standardisation and lets the estimator fit pure label noise.
		if s.Std[j] <= 1e-6*(1+math.Abs(s.Mean[j])) {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Transform returns the standardised copy of one row.
func (s *Scaler) Transform(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardises every row.
func (s *Scaler) TransformAll(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = s.Transform(r)
	}
	return out
}
