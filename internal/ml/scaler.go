package ml

import (
	"fmt"
	"math"
)

// Scaler standardises feature columns to zero mean and unit variance.
// Columns with zero variance are passed through centred only, so constant
// features cannot blow up the transform.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes the per-column statistics of the design rows.
func FitScaler(rows [][]float64) (*Scaler, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("ml: cannot fit scaler on empty data")
	}
	k := len(rows[0])
	s := &Scaler{Mean: make([]float64, k), Std: make([]float64, k)}
	for _, r := range rows {
		if len(r) != k {
			return nil, fmt.Errorf("ml: ragged design row (%d cols, want %d)", len(r), k)
		}
		for j, v := range r {
			s.Mean[j] += v
		}
	}
	n := float64(len(rows))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, r := range rows {
		for j, v := range r {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		// Columns that are constant — or nearly so relative to their
		// magnitude — pass through centred only. Without the relative
		// test, a feature like a p-value score that saturates at 1.0 with
		// a 1e-8 spread becomes a huge-leverage direction after
		// standardisation and lets the estimator fit pure label noise.
		if s.Std[j] <= 1e-6*(1+math.Abs(s.Mean[j])) {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Transform returns the standardised copy of one row.
func (s *Scaler) Transform(row []float64) []float64 {
	out := make([]float64, len(row))
	s.TransformInto(row, out)
	return out
}

// TransformInto standardises one row into a caller-owned buffer of the
// same length, allocating nothing. The arithmetic is Transform's own.
func (s *Scaler) TransformInto(row, out []float64) {
	for j, v := range row {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
}

// TransformAll standardises every row.
func (s *Scaler) TransformAll(rows [][]float64) [][]float64 {
	return s.TransformAllInto(rows, nil)
}

// TransformAllInto standardises every row, reusing the buffer's row
// slices where they are already the right length — the refit hot path
// passes the previous iteration's buffer back in, so a session's
// per-label retrains stop allocating one slice per row per fit. The
// returned slice is the (possibly regrown) buffer.
func (s *Scaler) TransformAllInto(rows, buf [][]float64) [][]float64 {
	if cap(buf) < len(rows) {
		grown := make([][]float64, len(rows))
		copy(grown, buf[:cap(buf)])
		buf = grown
	}
	buf = buf[:len(rows)]
	for i, r := range rows {
		if len(buf[i]) != len(r) {
			buf[i] = make([]float64, len(r))
		}
		s.TransformInto(r, buf[i])
	}
	return buf
}
