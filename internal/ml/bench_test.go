package ml

import (
	"math/rand"
	"testing"
)

func benchData(n, k int) ([][]float64, []float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, n)
	yReg := make([]float64, n)
	yCls := make([]float64, n)
	for i := range rows {
		r := make([]float64, k)
		s := 0.0
		for j := range r {
			r[j] = rng.NormFloat64()
			s += r[j] * float64(j+1) * 0.1
		}
		rows[i] = r
		yReg[i] = s
		if s > 0 {
			yCls[i] = 1
		}
	}
	return rows, yReg, yCls
}

func BenchmarkLinearRegressionFit(b *testing.B) {
	rows, y, _ := benchData(100, 8)
	m := NewLinearRegression(1e-6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Fit(rows, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinearRegressionPredictAll(b *testing.B) {
	rows, y, _ := benchData(280, 8)
	m := NewLinearRegression(1e-6)
	if err := m.Fit(rows[:50], y[:50]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictAll(rows)
	}
}

func BenchmarkLogisticRegressionFit(b *testing.B) {
	rows, _, y := benchData(100, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewLogisticRegression()
		if err := m.Fit(rows, y); err != nil {
			b.Fatal(err)
		}
	}
}
