package ml

import (
	"fmt"

	"viewseeker/internal/linalg"
)

// SuffStats accumulates the sufficient statistics of a ridge regression in
// standardised feature space: the label count, per-feature sums Σz and
// Σy·z, the label sum Σy, and the upper triangle of the second-moment
// matrix Σz·zᵀ. One labelled row enters as a rank-1 update (Add), after
// which LinearRegression.FitSufficient solves the centred normal equations
// without ever rebuilding a design matrix — the per-label refit cost
// becomes O(k²) instead of O(n·k²).
//
// Determinism contract: an incremental session (Add per label as it
// arrives) holds exactly the same statistics as a from-scratch pass that
// Adds the same standardised rows in the same order — Add is the only
// accumulation path, so the floating-point op sequence is identical and
// session replay reproduces fits bit for bit. Statistics are tied to the
// scaler that produced the z rows: if the standardisation changes (the
// feature matrix was refreshed), the statistics must be rebuilt.
type SuffStats struct {
	K int // feature dimension
	N int // rows absorbed

	Sy  float64   // Σy
	Sx  []float64 // Σz, per feature
	Sxy []float64 // Σy·z, per feature
	// Sxx is Σz·zᵀ, upper triangle only (j ≥ i); the lower triangle is
	// implied by symmetry and never written.
	Sxx *linalg.Matrix
}

// NewSuffStats returns empty statistics for k features.
func NewSuffStats(k int) *SuffStats {
	return &SuffStats{
		K:   k,
		Sx:  make([]float64, k),
		Sxy: make([]float64, k),
		Sxx: linalg.NewMatrix(k, k),
	}
}

// Add absorbs one standardised row z with label y as a rank-1 update.
func (s *SuffStats) Add(z []float64, y float64) error {
	if len(z) != s.K {
		return fmt.Errorf("ml: sufficient-statistics row has %d features, want %d", len(z), s.K)
	}
	for i, zi := range z {
		s.Sx[i] += zi
		s.Sxy[i] += y * zi
		row := s.Sxx.Data[i*s.K:]
		for j := i; j < s.K; j++ {
			row[j] += zi * z[j]
		}
	}
	s.Sy += y
	s.N++
	return nil
}
