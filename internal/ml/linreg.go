package ml

import (
	"fmt"

	"viewseeker/internal/linalg"
)

// LinearRegression is the view utility estimator: ŷ = w·x + b fitted by
// ridge-regularised least squares over standardised features. Ridge keeps
// the normal equations well-posed in the early iterations, when there are
// fewer labels than features — exactly the regime ViewSeeker's cold start
// operates in.
type LinearRegression struct {
	// Lambda is the ridge penalty. Zero is ordinary least squares (and will
	// fail on rank-deficient designs); the default used by ViewSeeker is
	// small, just enough to recover exact linear targets while keeping the
	// normal equations well-posed.
	Lambda float64
	// ExternalScaler, when set, standardises features with statistics the
	// caller fitted elsewhere — in ViewSeeker, over the whole view space
	// rather than just the labelled rows. In a transductive setting this
	// matters: a feature that is near-constant among the labelled views
	// but wide-ranged globally would otherwise turn into a huge-leverage
	// direction, and predictions on unlabelled views would extrapolate
	// wildly off a handful of noisy labels.
	ExternalScaler *Scaler

	weights []float64 // on standardised features
	bias    float64
	scaler  *Scaler
}

// NewLinearRegression returns an estimator with the given ridge penalty.
func NewLinearRegression(lambda float64) *LinearRegression {
	return &LinearRegression{Lambda: lambda}
}

// Fit solves the regularised normal equations (Xᵀ X + λI)·w = Xᵀ y on
// standardised, centred data. It requires at least one row.
func (m *LinearRegression) Fit(rows [][]float64, y []float64) error {
	if len(rows) == 0 {
		return fmt.Errorf("ml: linear regression needs at least one labelled row")
	}
	if len(rows) != len(y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(rows), len(y))
	}
	scaler := m.ExternalScaler
	if scaler == nil {
		var err error
		scaler, err = FitScaler(rows)
		if err != nil {
			return err
		}
	}
	std := scaler.TransformAll(rows)
	k := len(std[0])
	// Centre both the labels and the (standardised) design by the
	// labelled set's own means, so the intercept decouples regardless of
	// where the scaler's statistics came from (internal fits have zero
	// column means anyway; external, whole-space scalers do not).
	yMean := 0.0
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(len(y))
	colMeans := make([]float64, k)
	for _, r := range std {
		for j, v := range r {
			colMeans[j] += v
		}
	}
	for j := range colMeans {
		colMeans[j] /= float64(len(std))
	}

	x := linalg.NewMatrix(len(std), k)
	for i, r := range std {
		for j, v := range r {
			x.Set(i, j, v-colMeans[j])
		}
	}
	gram := x.Gram()
	lambda := m.Lambda
	if lambda <= 0 {
		lambda = 0
	}
	for i := 0; i < k; i++ {
		gram.Add(i, i, lambda)
	}
	rhs := make([]float64, k)
	for i, r := range std {
		resid := y[i] - yMean
		for j, v := range r {
			rhs[j] += (v - colMeans[j]) * resid
		}
	}
	w, err := linalg.SolveCholesky(gram, rhs)
	if err != nil {
		// Rank-deficient and unregularised: fall back to pivoted Gaussian
		// elimination with a tiny jitter so early-session fits always
		// produce some estimator.
		for i := 0; i < k; i++ {
			gram.Add(i, i, 1e-9)
		}
		w, err = linalg.Solve(gram, rhs)
		if err != nil {
			return fmt.Errorf("ml: fitting linear regression: %w", err)
		}
	}
	m.weights = w
	m.bias = yMean - linalg.Dot(w, colMeans)
	m.scaler = scaler
	return nil
}

// Fitted reports whether Fit has succeeded at least once.
func (m *LinearRegression) Fitted() bool { return m.scaler != nil }

// Predict returns ŷ for one feature row. Calling Predict before Fit
// returns 0.
func (m *LinearRegression) Predict(row []float64) float64 {
	if m.scaler == nil {
		return 0
	}
	return m.bias + linalg.Dot(m.weights, m.scaler.Transform(row))
}

// PredictAll returns predictions for every row.
func (m *LinearRegression) PredictAll(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = m.Predict(r)
	}
	return out
}

// Weights returns the learned weights mapped back to the original
// (unstandardised) feature space, plus the matching intercept. This is the
// recovered utility-function composition β of Eq. 4 that ViewSeeker reports.
func (m *LinearRegression) Weights() (w []float64, intercept float64) {
	if m.scaler == nil {
		return nil, 0
	}
	w = make([]float64, len(m.weights))
	intercept = m.bias
	for j := range m.weights {
		w[j] = m.weights[j] / m.scaler.Std[j]
		intercept -= w[j] * m.scaler.Mean[j]
	}
	return w, intercept
}
