package ml

import (
	"fmt"

	"viewseeker/internal/linalg"
)

// LinearRegression is the view utility estimator: ŷ = w·x + b fitted by
// ridge-regularised least squares over standardised features. Ridge keeps
// the normal equations well-posed in the early iterations, when there are
// fewer labels than features — exactly the regime ViewSeeker's cold start
// operates in.
type LinearRegression struct {
	// Lambda is the ridge penalty. Zero is ordinary least squares (and will
	// fail on rank-deficient designs); the default used by ViewSeeker is
	// small, just enough to recover exact linear targets while keeping the
	// normal equations well-posed.
	Lambda float64
	// ExternalScaler, when set, standardises features with statistics the
	// caller fitted elsewhere — in ViewSeeker, over the whole view space
	// rather than just the labelled rows. In a transductive setting this
	// matters: a feature that is near-constant among the labelled views
	// but wide-ranged globally would otherwise turn into a huge-leverage
	// direction, and predictions on unlabelled views would extrapolate
	// wildly off a handful of noisy labels.
	ExternalScaler *Scaler

	weights []float64 // on standardised features
	bias    float64
	scaler  *Scaler

	// Solver workspaces reused across FitSufficient calls: the normal
	// equations, the Cholesky factor and the triangular-solve scratch are
	// all O(k²)/O(k) buffers whose reallocation per label would dominate a
	// session's refit allocations (see TestRefitAllocations).
	gram, chol          *linalg.Matrix
	rhs, fwd, sol, zbar []float64
}

// NewLinearRegression returns an estimator with the given ridge penalty.
func NewLinearRegression(lambda float64) *LinearRegression {
	return &LinearRegression{Lambda: lambda}
}

// Fit solves the regularised normal equations (Xᵀ X + λI)·w = Xᵀ y on
// standardised, centred data. It requires at least one row.
func (m *LinearRegression) Fit(rows [][]float64, y []float64) error {
	if len(rows) == 0 {
		return fmt.Errorf("ml: linear regression needs at least one labelled row")
	}
	if len(rows) != len(y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(rows), len(y))
	}
	scaler := m.ExternalScaler
	if scaler == nil {
		var err error
		scaler, err = FitScaler(rows)
		if err != nil {
			return err
		}
	}
	std := scaler.TransformAll(rows)
	k := len(std[0])
	// Centre both the labels and the (standardised) design by the
	// labelled set's own means, so the intercept decouples regardless of
	// where the scaler's statistics came from (internal fits have zero
	// column means anyway; external, whole-space scalers do not).
	yMean := 0.0
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(len(y))
	colMeans := make([]float64, k)
	for _, r := range std {
		for j, v := range r {
			colMeans[j] += v
		}
	}
	for j := range colMeans {
		colMeans[j] /= float64(len(std))
	}

	x := linalg.NewMatrix(len(std), k)
	for i, r := range std {
		for j, v := range r {
			x.Set(i, j, v-colMeans[j])
		}
	}
	gram := x.Gram()
	lambda := m.Lambda
	if lambda <= 0 {
		lambda = 0
	}
	for i := 0; i < k; i++ {
		gram.Add(i, i, lambda)
	}
	rhs := make([]float64, k)
	for i, r := range std {
		resid := y[i] - yMean
		for j, v := range r {
			rhs[j] += (v - colMeans[j]) * resid
		}
	}
	w, err := linalg.SolveCholesky(gram, rhs)
	if err != nil {
		// Rank-deficient and unregularised: fall back to pivoted Gaussian
		// elimination with a tiny jitter so early-session fits always
		// produce some estimator.
		for i := 0; i < k; i++ {
			gram.Add(i, i, 1e-9)
		}
		w, err = linalg.Solve(gram, rhs)
		if err != nil {
			return fmt.Errorf("ml: fitting linear regression: %w", err)
		}
	}
	m.weights = w
	m.bias = yMean - linalg.Dot(w, colMeans)
	m.scaler = scaler
	return nil
}

// FitSufficient solves the same regularised, centred normal equations as
// Fit, but from accumulated sufficient statistics instead of labelled
// rows: G = Sxx − n·z̄·z̄ᵀ + λI and rhs = Sxy − Sy·z̄ over the
// standardised feature space the statistics were collected in. It
// requires ExternalScaler (the statistics are meaningless without the
// scaler that produced their z rows) and at least one absorbed label.
// All solver buffers are reused across calls, so a per-label refit costs
// O(k²) arithmetic and no steady-state allocations. Fit remains the
// reference implementation; FitSufficient agrees with it to solver
// tolerance (the algebra is rearranged), and with itself exactly: the
// same statistics always produce bit-identical weights.
func (m *LinearRegression) FitSufficient(s *SuffStats) error {
	if s == nil || s.N == 0 {
		return fmt.Errorf("ml: linear regression needs at least one labelled row")
	}
	if m.ExternalScaler == nil {
		return fmt.Errorf("ml: FitSufficient requires ExternalScaler (statistics are bound to a scaler)")
	}
	k := s.K
	if m.gram == nil || m.gram.Rows != k {
		m.gram = linalg.NewMatrix(k, k)
		m.chol = linalg.NewMatrix(k, k)
		m.rhs = make([]float64, k)
		m.fwd = make([]float64, k)
		m.sol = make([]float64, k)
		m.zbar = make([]float64, k)
	}
	n := float64(s.N)
	yMean := s.Sy / n
	for j := 0; j < k; j++ {
		m.zbar[j] = s.Sx[j] / n
	}
	lambda := m.Lambda
	if lambda <= 0 {
		lambda = 0
	}
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			g := s.Sxx.At(i, j) - n*m.zbar[i]*m.zbar[j]
			if i == j {
				g += lambda
			}
			m.gram.Set(i, j, g)
			m.gram.Set(j, i, g)
		}
		m.rhs[i] = s.Sxy[i] - s.Sy*m.zbar[i]
	}
	if err := linalg.CholeskyInto(m.gram, m.chol); err != nil {
		// Rank-deficient and unregularised: the same jittered fallback as
		// Fit, so early-session refits always produce some estimator.
		for i := 0; i < k; i++ {
			m.gram.Add(i, i, 1e-9)
		}
		w, err := linalg.Solve(m.gram, m.rhs)
		if err != nil {
			return fmt.Errorf("ml: fitting linear regression: %w", err)
		}
		copy(m.sol, w)
	} else if err := linalg.SolveFactored(m.chol, m.rhs, m.fwd, m.sol); err != nil {
		return fmt.Errorf("ml: fitting linear regression: %w", err)
	}
	if len(m.weights) != k {
		m.weights = make([]float64, k)
	}
	copy(m.weights, m.sol)
	m.bias = yMean - linalg.Dot(m.weights, m.zbar)
	m.scaler = m.ExternalScaler
	return nil
}

// Fitted reports whether Fit has succeeded at least once.
func (m *LinearRegression) Fitted() bool { return m.scaler != nil }

// Predict returns ŷ for one feature row. Calling Predict before Fit
// returns 0. It standardises inline — no per-call allocation — with the
// same accumulation order as Dot over a Transformed copy, so predictions
// are bit-identical to the allocating form.
func (m *LinearRegression) Predict(row []float64) float64 {
	if m.scaler == nil {
		return 0
	}
	mean, std := m.scaler.Mean, m.scaler.Std
	s := 0.0
	for j, w := range m.weights {
		s += w * ((row[j] - mean[j]) / std[j])
	}
	return m.bias + s
}

// PredictAll returns predictions for every row.
func (m *LinearRegression) PredictAll(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = m.Predict(r)
	}
	return out
}

// Weights returns the learned weights mapped back to the original
// (unstandardised) feature space, plus the matching intercept. This is the
// recovered utility-function composition β of Eq. 4 that ViewSeeker reports.
func (m *LinearRegression) Weights() (w []float64, intercept float64) {
	if m.scaler == nil {
		return nil, 0
	}
	w = make([]float64, len(m.weights))
	intercept = m.bias
	for j := range m.weights {
		w[j] = m.weights[j] / m.scaler.Std[j]
		intercept -= w[j] * m.scaler.Mean[j]
	}
	return w, intercept
}
