// Package ml implements the two learners ViewSeeker needs, from scratch
// on top of internal/linalg: a ridge-regularised linear regression (the
// view utility estimator) and a logistic regression trained by gradient
// descent (the uncertainty estimator), plus the feature standardiser both
// share.
//
// # Contracts
//
// Determinism: training has no randomness — ridge regression solves the
// normal equations directly and logistic regression runs a fixed
// gradient-descent schedule from a zero initialisation (unless WarmStart
// is explicitly enabled, which trades replay purity for convergence
// speed; see LogisticRegression.WarmStart) — so refitting on the same
// labelling history reproduces the same weights bit for bit. Session
// replay (internal/store) and the selection-determinism tests rest on
// this.
//
// Incremental refits: SuffStats accumulates a ridge fit's sufficient
// statistics one labelled row at a time, and FitSufficient solves the
// centred normal equations from them with reused O(k²) workspaces — a
// per-label refit costs O(k²) arithmetic and at most one allocation
// instead of rebuilding the design. Incremental and from-scratch
// accumulation run the identical Add sequence, so they agree bit for
// bit; FitSufficient agrees with the retained reference Fit to solver
// tolerance (the algebra is rearranged).
//
// Fitting never mutates the caller's rows; scalers are fitted against the
// full view space (not just labelled rows) by the session layer, which
// keeps predictions stable over unlabelled views as labels accumulate.
// Predict, Prob and the *Into scaler forms standardise into reused or
// stack space with the same accumulation order as their allocating
// counterparts — zero allocations, bit-identical results.
package ml
