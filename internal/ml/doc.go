// Package ml implements the two learners ViewSeeker needs, from scratch
// on top of internal/linalg: a ridge-regularised linear regression (the
// view utility estimator) and a logistic regression trained by gradient
// descent (the uncertainty estimator), plus the feature standardiser both
// share.
//
// # Contracts
//
// Determinism: training has no randomness — ridge regression solves the
// normal equations directly and logistic regression runs a fixed
// gradient-descent schedule from a zero initialisation — so refitting on
// the same labelling history reproduces the same weights bit for bit.
// Session replay (internal/store) and the selection-determinism tests
// rest on this.
//
// Fitting never mutates the caller's rows; scalers are fitted against the
// full view space (not just labelled rows) by the session layer, which
// keeps predictions stable over unlabelled views as labels accumulate.
package ml
