package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randDesign builds a random design with k features and n rows, plus
// noisy linear labels.
func randDesign(rng *rand.Rand, n, k int) (rows [][]float64, y []float64) {
	w := make([]float64, k)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	rows = make([][]float64, n)
	y = make([]float64, n)
	for i := range rows {
		rows[i] = make([]float64, k)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() * float64(j+1)
		}
		for j := range rows[i] {
			y[i] += w[j] * rows[i][j]
		}
		y[i] += 0.3 + rng.NormFloat64()*0.1
	}
	return rows, y
}

// fitFromScratch standardises and absorbs the rows in order and solves —
// the reference an incremental session is held bit-identical to.
func fitFromScratch(t *testing.T, scaler *Scaler, rows [][]float64, y []float64, lambda float64) *LinearRegression {
	t.Helper()
	s := NewSuffStats(len(rows[0]))
	z := make([]float64, len(rows[0]))
	for i, r := range rows {
		scaler.TransformInto(r, z)
		if err := s.Add(z, y[i]); err != nil {
			t.Fatal(err)
		}
	}
	m := NewLinearRegression(lambda)
	m.ExternalScaler = scaler
	if err := m.FitSufficient(s); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestIncrementalRefitMatchesFromScratch is the determinism property that
// session replay depends on: a session that Adds one label at a time and
// refits after each must end with weights bit-identical to a fresh
// from-scratch accumulation over the same label sequence — across random
// designs, label orders and session lengths.
func TestIncrementalRefitMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(8)
		n := 1 + rng.Intn(30)
		rows, y := randDesign(rng, n+4, k)
		scaler, err := FitScaler(rows)
		if err != nil {
			t.Fatal(err)
		}
		inc := NewLinearRegression(1e-4)
		inc.ExternalScaler = scaler
		s := NewSuffStats(k)
		z := make([]float64, k)
		for i := 0; i < n; i++ {
			scaler.TransformInto(rows[i], z)
			if err := s.Add(z, y[i]); err != nil {
				t.Fatal(err)
			}
			if err := inc.FitSufficient(s); err != nil {
				t.Fatal(err)
			}
			fresh := fitFromScratch(t, scaler, rows[:i+1], y[:i+1], 1e-4)
			if math.Float64bits(inc.bias) != math.Float64bits(fresh.bias) {
				t.Fatalf("trial %d label %d: bias %v vs %v", trial, i, inc.bias, fresh.bias)
			}
			for j := range inc.weights {
				if math.Float64bits(inc.weights[j]) != math.Float64bits(fresh.weights[j]) {
					t.Fatalf("trial %d label %d: weight %d: %v vs %v",
						trial, i, j, inc.weights[j], fresh.weights[j])
				}
			}
		}
	}
}

// TestFitSufficientAgreesWithFit holds the sufficient-statistics solver to
// the retained design-matrix Fit: same data, same scaler, weights and
// predictions equal to solver tolerance (the algebra is rearranged, so
// bitwise equality is not expected — numerical agreement is).
func TestFitSufficientAgreesWithFit(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(6)
		n := 1 + rng.Intn(40)
		rows, y := randDesign(rng, n, k)
		scaler, err := FitScaler(rows)
		if err != nil {
			t.Fatal(err)
		}
		ref := NewLinearRegression(1e-4)
		ref.ExternalScaler = scaler
		if err := ref.Fit(rows, y); err != nil {
			t.Fatal(err)
		}
		inc := fitFromScratch(t, scaler, rows, y, 1e-4)
		probe := make([]float64, k)
		for j := range probe {
			probe[j] = rng.NormFloat64() * 3
		}
		pr, pi := ref.Predict(probe), inc.Predict(probe)
		scale := 1 + math.Abs(pr)
		if math.Abs(pr-pi) > 1e-6*scale {
			t.Fatalf("trial %d (n=%d k=%d): predictions diverge: %v vs %v", trial, n, k, pr, pi)
		}
		wr, br := ref.Weights()
		wi, bi := inc.Weights()
		for j := range wr {
			if math.Abs(wr[j]-wi[j]) > 1e-6*(1+math.Abs(wr[j])) {
				t.Fatalf("trial %d: weight %d: %v vs %v", trial, j, wr[j], wi[j])
			}
		}
		if math.Abs(br-bi) > 1e-6*(1+math.Abs(br)) {
			t.Fatalf("trial %d: intercept %v vs %v", trial, br, bi)
		}
	}
}

// TestFitSufficientQuickLabelSequences drives random label sequences
// through testing/quick: any sequence of labels over a fixed design gives
// an incremental fit bit-identical to the from-scratch one.
func TestFitSufficientQuickLabelSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const k = 5
	rows, _ := randDesign(rng, 64, k)
	scaler, err := FitScaler(rows)
	if err != nil {
		t.Fatal(err)
	}
	f := func(picks []uint8, labels []bool) bool {
		if len(picks) == 0 {
			return true
		}
		if len(labels) < len(picks) {
			return true
		}
		inc := NewLinearRegression(1e-4)
		inc.ExternalScaler = scaler
		s := NewSuffStats(k)
		z := make([]float64, k)
		var seqRows [][]float64
		var seqY []float64
		for i, p := range picks {
			r := rows[int(p)%len(rows)]
			yv := 0.0
			if labels[i] {
				yv = 1
			}
			seqRows = append(seqRows, r)
			seqY = append(seqY, yv)
			scaler.TransformInto(r, z)
			if s.Add(z, yv) != nil {
				return false
			}
			if inc.FitSufficient(s) != nil {
				return false
			}
		}
		fresh := fitFromScratch(t, scaler, seqRows, seqY, 1e-4)
		if math.Float64bits(inc.bias) != math.Float64bits(fresh.bias) {
			return false
		}
		for j := range inc.weights {
			if math.Float64bits(inc.weights[j]) != math.Float64bits(fresh.weights[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFitSufficientErrors(t *testing.T) {
	m := NewLinearRegression(1e-4)
	if err := m.FitSufficient(nil); err == nil {
		t.Error("nil statistics should fail")
	}
	if err := m.FitSufficient(NewSuffStats(3)); err == nil {
		t.Error("empty statistics should fail")
	}
	s := NewSuffStats(3)
	if err := s.Add([]float64{1, 2}, 1); err == nil {
		t.Error("short row should fail")
	}
	if err := s.Add([]float64{1, 2, 3}, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.FitSufficient(s); err == nil {
		t.Error("FitSufficient without ExternalScaler should fail")
	}
}

// TestRefitAllocations pins the steady-state allocation count of the
// incremental refit loop (in the style of TestBinIndexAllocations): after
// warm-up, absorbing a label and re-solving must reuse every workspace —
// the rank-1 update, the normal equations, the Cholesky factor, the
// triangular solves and the weight vector.
func TestRefitAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	const k = 8
	rows, y := randDesign(rng, 200, k)
	scaler, err := FitScaler(rows)
	if err != nil {
		t.Fatal(err)
	}
	m := NewLinearRegression(1e-4)
	m.ExternalScaler = scaler
	s := NewSuffStats(k)
	z := make([]float64, k)
	next := 0
	add := func() {
		scaler.TransformInto(rows[next], z)
		if err := s.Add(z, y[next]); err != nil {
			t.Fatal(err)
		}
		next++
		if err := m.FitSufficient(s); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up: allocate the workspaces once.
	for i := 0; i < 3; i++ {
		add()
	}
	allocs := testing.AllocsPerRun(10, add)
	if allocs > 1 {
		t.Errorf("incremental refit allocates %.1f times per label, want ≤ 1", allocs)
	}
	// Prediction after an incremental fit is allocation-free.
	probe := rows[0]
	allocs = testing.AllocsPerRun(10, func() { _ = m.Predict(probe) })
	if allocs != 0 {
		t.Errorf("Predict allocates %.1f times, want 0", allocs)
	}
}

// TestPredictMatchesTransformDot pins the inline standardising Predict
// and Prob to the allocating Transform+Dot forms they replaced.
func TestPredictMatchesTransformDot(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	rows, y := randDesign(rng, 40, 6)
	scaler, err := FitScaler(rows)
	if err != nil {
		t.Fatal(err)
	}
	lin := NewLinearRegression(1e-4)
	lin.ExternalScaler = scaler
	if err := lin.Fit(rows, y); err != nil {
		t.Fatal(err)
	}
	cls := NewLogisticRegression()
	cls.ExternalScaler = scaler
	by := make([]float64, len(y))
	for i := range y {
		if y[i] > 0 {
			by[i] = 1
		}
	}
	if err := cls.Fit(rows, by); err != nil {
		t.Fatal(err)
	}
	dot := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	for _, r := range rows {
		z := scaler.Transform(r)
		if got, want := lin.Predict(r), lin.bias+dot(lin.weights, z); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Predict %v != Transform+Dot %v", got, want)
		}
		if got, want := cls.Prob(r), sigmoid(cls.bias+dot(cls.weights, z)); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Prob %v != Transform+Dot %v", got, want)
		}
	}
}

// TestTransformIntoMatchesTransform pins the buffer-reusing transforms to
// the allocating ones, including buffer regrowth and row-slice reuse.
func TestTransformIntoMatchesTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	rows, _ := randDesign(rng, 25, 4)
	scaler, err := FitScaler(rows)
	if err != nil {
		t.Fatal(err)
	}
	var buf [][]float64
	for pass := 0; pass < 3; pass++ {
		n := 5 + pass*10 // grows past the previous capacity
		buf = scaler.TransformAllInto(rows[:n], buf)
		want := scaler.TransformAll(rows[:n])
		for i := range want {
			for j := range want[i] {
				if math.Float64bits(buf[i][j]) != math.Float64bits(want[i][j]) {
					t.Fatalf("pass %d row %d col %d: %v vs %v", pass, i, j, buf[i][j], want[i][j])
				}
			}
		}
	}
	// Steady state: same shape in, zero allocations.
	allocs := testing.AllocsPerRun(10, func() {
		buf = scaler.TransformAllInto(rows[:25], buf)
	})
	if allocs != 0 {
		t.Errorf("steady-state TransformAllInto allocates %.1f times, want 0", allocs)
	}
}

// TestLogisticWarmStart pins the warm-start mechanism: it is
// deterministic (two identically driven chains agree bit for bit), it
// converges in fewer epochs than a cold fit on a nearby problem, and it
// changes nothing when disabled.
func TestLogisticWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	rows, _ := randDesign(rng, 120, 5)
	y := make([]float64, len(rows))
	for i, r := range rows {
		if r[0]+r[1] > 0 {
			y[i] = 1
		}
	}
	scaler, err := FitScaler(rows)
	if err != nil {
		t.Fatal(err)
	}
	chain := func() *LogisticRegression {
		m := NewLogisticRegression()
		m.ExternalScaler = scaler
		m.WarmStart = true
		for n := 40; n <= len(rows); n += 40 {
			if err := m.Fit(rows[:n], y[:n]); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	a, b := chain(), chain()
	if math.Float64bits(a.bias) != math.Float64bits(b.bias) {
		t.Fatalf("warm-start chains diverge: bias %v vs %v", a.bias, b.bias)
	}
	for j := range a.weights {
		if math.Float64bits(a.weights[j]) != math.Float64bits(b.weights[j]) {
			t.Fatalf("warm-start chains diverge at weight %d", j)
		}
	}

	// Epoch comparison runs with a cap high enough that both fits
	// converge by tolerance rather than both saturating the cap (a
	// separable problem's gradient decays slowly).
	mk := func() *LogisticRegression {
		m := NewLogisticRegression()
		m.ExternalScaler = scaler
		m.Epochs = 20000
		m.Tol = 1e-6
		return m
	}
	cold := mk()
	if err := cold.Fit(rows, y); err != nil {
		t.Fatal(err)
	}
	warm := mk()
	warm.WarmStart = true
	if err := warm.Fit(rows[:len(rows)-1], y[:len(rows)-1]); err != nil {
		t.Fatal(err)
	}
	if err := warm.Fit(rows, y); err != nil {
		t.Fatal(err)
	}
	if cold.EpochsRun() >= 20000 {
		t.Fatalf("cold fit saturated the %d-epoch cap; comparison is meaningless", cold.EpochsRun())
	}
	if warm.EpochsRun() >= cold.EpochsRun() {
		t.Errorf("warm fit took %d epochs, cold took %d — warm start saved nothing",
			warm.EpochsRun(), cold.EpochsRun())
	}

	// Disabled, the previous state is ignored: a reused model fits
	// exactly like a fresh one with the same configuration.
	fresh := NewLogisticRegression()
	fresh.ExternalScaler = scaler
	if err := fresh.Fit(rows, y); err != nil {
		t.Fatal(err)
	}
	reused := NewLogisticRegression()
	reused.ExternalScaler = scaler
	if err := reused.Fit(rows[:60], y[:60]); err != nil {
		t.Fatal(err)
	}
	if err := reused.Fit(rows, y); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(reused.bias) != math.Float64bits(fresh.bias) {
		t.Fatalf("cold refit depends on history: bias %v vs %v", reused.bias, fresh.bias)
	}
	for j := range reused.weights {
		if math.Float64bits(reused.weights[j]) != math.Float64bits(fresh.weights[j]) {
			t.Fatalf("cold refit depends on history at weight %d", j)
		}
	}
}
