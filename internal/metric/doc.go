// Package metric implements the utility components ViewSeeker composes
// into view utility features: the five deviation distances between a
// target-view and a reference-view probability distribution (KL
// divergence, Earth Mover's Distance, L1, L2, maximum per-bin deviation),
// the Usability and Accuracy quality measures of MuVE, and the χ²-based
// p-value of top-k-insights. All functions are pure and operate on
// normalised distributions represented as []float64.
//
// # Contracts
//
// Purity and determinism: no state, no randomness, inputs never mutated —
// the feature matrix built on these functions is a deterministic function
// of its inputs, which content-addressed caching depends on. Distances
// are defined for equal-length distributions and guard the usual edge
// cases (zero bins in KL via smoothing, empty distributions) by returning
// finite values rather than NaN/Inf, so one degenerate view can never
// poison a whole feature column.
//
// Block kernels: DeviationsAll computes all five deviation distances in
// one pass over a pair, and NormalizeInto / PValueScoreN are the
// buffer-reusing forms the layout-block feature path is built on. Each
// replicates the exact floating-point operation sequence of its scalar
// counterpart, so batched values are bit-identical to per-call values —
// the per-pair functions remain the oracle, enforced by property tests.
package metric
