package metric

import (
	"fmt"
	"math"
)

// NumDeviations is the number of deviation measures DeviationsAll emits,
// in its fixed output order: KL, EMD, L1, L2, MaxDiff.
const NumDeviations = 5

// Positions of each deviation measure in DeviationsAll's output.
const (
	DevKL = iota
	DevEMD
	DevL1
	DevL2
	DevMaxDiff
)

// DeviationsAll computes all five deviation measures between two
// distributions in one fused pass, writing them into out[:NumDeviations]
// in the order KL, EMD, L1, L2, MaxDiff. Each accumulator replays the
// exact floating-point operation sequence of the corresponding scalar
// function (KLDivergence, EMD, L1, L2, MaxDiff), so results are
// bit-identical to the per-call path — the scalar functions remain the
// oracle for this kernel. It allocates nothing.
func DeviationsAll(p, q, out []float64) error {
	if err := checkPair(p, q); err != nil {
		return err
	}
	var kl, emd, cdf, l1, l2, maxd float64
	for i := range p {
		pi, qi := p[i], q[i]
		if pi > 0 {
			qs := qi
			if qs < epsilon {
				qs = epsilon
			}
			kl += pi * math.Log(pi/qs)
		}
		t := pi - qi
		cdf += t
		emd += math.Abs(cdf)
		at := math.Abs(t)
		l1 += at
		l2 += t * t
		if at > maxd {
			maxd = at
		}
	}
	if kl < 0 {
		kl = 0 // guard tiny negative residue from smoothing
	}
	out[DevKL] = kl
	out[DevEMD] = emd
	out[DevL1] = l1
	out[DevL2] = math.Sqrt(l2)
	out[DevMaxDiff] = maxd
	return nil
}

// NormalizeInto is the buffer-reusing form of Normalize: it scales bins
// into a probability distribution written to out (len(out) must equal
// len(bins)), replicating Normalize's semantics exactly — the total sums
// only positive values, an all-zero histogram normalises to uniform, and
// non-positive entries are written as 0 (out is fully overwritten, so a
// reused scratch buffer carries no stale values).
func NormalizeInto(out, bins []float64) error {
	if len(out) != len(bins) {
		return fmt.Errorf("metric: normalize into %d bins from %d", len(out), len(bins))
	}
	total := 0.0
	for _, v := range bins {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		u := 1 / float64(len(bins))
		for i := range out {
			out[i] = u
		}
		return nil
	}
	for i, v := range bins {
		if v > 0 {
			out[i] = v / total
		} else {
			out[i] = 0
		}
	}
	return nil
}

// PValueScoreN is PValueScore for callers that already know the target's
// total count and have validated its bins non-negative (e.g. a block
// kernel that sums each measure's counts once per layout rather than once
// per view). targetCounts and refDist must be the same non-zero length.
func PValueScoreN(targetCounts []float64, n float64, refDist []float64) (float64, error) {
	if n == 0 {
		return 0, nil // no data: nothing extreme about it
	}
	chi2 := 0.0
	df := -1 // bins − 1 degrees of freedom
	for i := range targetCounts {
		exp := refDist[i] * n
		if exp < epsilon {
			// The reference says this bin is impossible; any observed mass
			// there is maximally surprising.
			if targetCounts[i] > 0 {
				return 1, nil
			}
			continue
		}
		d := targetCounts[i] - exp
		chi2 += d * d / exp
		df++
	}
	if df < 1 {
		return 0, nil
	}
	cdf, err := ChiSquareCDF(chi2, df)
	if err != nil {
		return 0, err
	}
	return cdf, nil // cdf = 1 − p
}
