package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randDistPair builds a random pair of distributions with adversarial
// structure for the fused kernel: zero bins, exact ties, and occasional
// all-zero histograms that exercise the uniform fallback.
func randDistPair(rng *rand.Rand) (p, q []float64) {
	n := 1 + rng.Intn(64)
	rawP := make([]float64, n)
	rawQ := make([]float64, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0: // empty bin
		case 1: // tie: same mass both sides
			v := rng.Float64() * 100
			rawP[i], rawQ[i] = v, v
		default:
			rawP[i] = rng.Float64() * 100
			rawQ[i] = rng.Float64() * 100
		}
	}
	if rng.Intn(16) == 0 {
		for i := range rawP {
			rawP[i] = 0
		}
	}
	if rng.Intn(16) == 0 {
		for i := range rawQ {
			rawQ[i] = 0
		}
	}
	return Normalize(rawP), Normalize(rawQ)
}

// TestDeviationsAllMatchesScalar pins the fused kernel bit-identical to
// the five scalar functions it replaces, across random bin counts, zero
// patterns, and degenerate (uniform-fallback) distributions.
func TestDeviationsAllMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	out := make([]float64, NumDeviations)
	for trial := 0; trial < 500; trial++ {
		p, q := randDistPair(rng)
		if err := DeviationsAll(p, q, out); err != nil {
			t.Fatal(err)
		}
		scalars := []struct {
			name string
			fn   func(p, q []float64) (float64, error)
			pos  int
		}{
			{"KL", KLDivergence, DevKL},
			{"EMD", EMD, DevEMD},
			{"L1", L1, DevL1},
			{"L2", L2, DevL2},
			{"MaxDiff", MaxDiff, DevMaxDiff},
		}
		for _, s := range scalars {
			want, err := s.fn(p, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(out[s.pos]) != math.Float64bits(want) {
				t.Fatalf("trial %d: %s = %v (fused) vs %v (scalar), bins %d",
					trial, s.name, out[s.pos], want, len(p))
			}
		}
	}
}

// TestDeviationsAllQuick drives the same identity through testing/quick's
// generator for raw (un-normalised, possibly negative) inputs — the fused
// kernel must track the scalars on any same-length input, not just
// well-formed distributions.
func TestDeviationsAllQuick(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		if len(pairs) == 0 {
			return true
		}
		p := make([]float64, len(pairs))
		q := make([]float64, len(pairs))
		for i, pr := range pairs {
			p[i], q[i] = pr[0], pr[1]
		}
		out := make([]float64, NumDeviations)
		if err := DeviationsAll(p, q, out); err != nil {
			return false
		}
		kl, _ := KLDivergence(p, q)
		emd, _ := EMD(p, q)
		l1, _ := L1(p, q)
		l2, _ := L2(p, q)
		md, _ := MaxDiff(p, q)
		return math.Float64bits(out[DevKL]) == math.Float64bits(kl) &&
			math.Float64bits(out[DevEMD]) == math.Float64bits(emd) &&
			math.Float64bits(out[DevL1]) == math.Float64bits(l1) &&
			math.Float64bits(out[DevL2]) == math.Float64bits(l2) &&
			math.Float64bits(out[DevMaxDiff]) == math.Float64bits(md)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviationsAllErrors(t *testing.T) {
	out := make([]float64, NumDeviations)
	if err := DeviationsAll([]float64{1}, []float64{1, 2}, out); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := DeviationsAll(nil, nil, out); err == nil {
		t.Error("empty distributions should fail")
	}
}

// TestNormalizeIntoMatchesNormalize pins the buffer-reusing normalise to
// the allocating one, including stale-buffer overwrites and the all-zero
// uniform fallback.
func TestNormalizeIntoMatchesNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(32)
		bins := make([]float64, n)
		for i := range bins {
			switch rng.Intn(3) {
			case 0:
			case 1:
				bins[i] = -rng.Float64() // negative values must zero out
			default:
				bins[i] = rng.Float64() * 1000
			}
		}
		if rng.Intn(8) == 0 {
			for i := range bins {
				bins[i] = 0
			}
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.NaN() // stale garbage must be fully overwritten
		}
		if err := NormalizeInto(out, bins); err != nil {
			t.Fatal(err)
		}
		want := Normalize(bins)
		for i := range want {
			if math.Float64bits(out[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d bin %d: %v vs %v", trial, i, out[i], want[i])
			}
		}
	}
	if err := NormalizeInto(make([]float64, 2), make([]float64, 3)); err == nil {
		t.Error("length mismatch should fail")
	}
}

// TestPValueScoreNMatchesPValueScore pins the pre-summed form to the
// validating one on random histograms, including impossible-bin and
// empty-target cases.
func TestPValueScoreNMatchesPValueScore(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(16)
		counts := make([]float64, n)
		ref := make([]float64, n)
		total := 0.0
		for i := range counts {
			if rng.Intn(3) > 0 {
				counts[i] = float64(rng.Intn(50))
			}
			total += counts[i]
			if rng.Intn(4) > 0 {
				ref[i] = rng.Float64()
			}
		}
		refDist := Normalize(ref)
		want, err := PValueScore(counts, refDist)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PValueScoreN(counts, total, refDist)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: %v vs %v", trial, got, want)
		}
	}
}
