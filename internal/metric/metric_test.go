package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func dist(vals ...float64) []float64 { return Normalize(vals) }

func TestNormalize(t *testing.T) {
	p := Normalize([]float64{1, 3})
	if p[0] != 0.25 || p[1] != 0.75 {
		t.Errorf("Normalize = %v", p)
	}
	// All-zero input becomes uniform.
	u := Normalize([]float64{0, 0, 0, 0})
	for _, v := range u {
		if v != 0.25 {
			t.Errorf("zero histogram should normalise uniform, got %v", u)
		}
	}
	// Negative bins are treated as empty.
	n := Normalize([]float64{-5, 1})
	if n[0] != 0 || n[1] != 1 {
		t.Errorf("negative bins = %v", n)
	}
}

func TestDistancesIdentity(t *testing.T) {
	p := dist(1, 2, 3, 4)
	for name, f := range map[string]func(a, b []float64) (float64, error){
		"KL": KLDivergence, "EMD": EMD, "L1": L1, "L2": L2, "MaxDiff": MaxDiff,
	} {
		d, err := f(p, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d > 1e-12 {
			t.Errorf("%s(p, p) = %v, want 0", name, d)
		}
	}
}

func TestDistancesErrors(t *testing.T) {
	for name, f := range map[string]func(a, b []float64) (float64, error){
		"KL": KLDivergence, "EMD": EMD, "L1": L1, "L2": L2, "MaxDiff": MaxDiff,
	} {
		if _, err := f([]float64{1}, []float64{0.5, 0.5}); err == nil {
			t.Errorf("%s: expected length-mismatch error", name)
		}
		if _, err := f(nil, nil); err == nil {
			t.Errorf("%s: expected empty error", name)
		}
	}
}

func TestKLDivergenceKnown(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	want := 0.5*math.Log(2) + 0.5*math.Log(0.5/0.75)
	got, err := KLDivergence(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("KL = %v, want %v", got, want)
	}
}

func TestKLDivergenceZeroBins(t *testing.T) {
	// q has a zero bin where p has mass: finite (smoothed), large.
	got, err := KLDivergence([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(got, 0) || math.IsNaN(got) || got < 1 {
		t.Errorf("smoothed KL = %v, want large finite", got)
	}
	// p has a zero bin where q has mass: that term contributes 0.
	got, err = KLDivergence([]float64{0, 1}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Log(2)) > 1e-9 {
		t.Errorf("KL = %v, want ln 2", got)
	}
}

func TestEMDKnown(t *testing.T) {
	// Moving all mass one bin over costs exactly 1 CDF step.
	got, err := EMD([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("EMD = %v, want 1", got)
	}
	// Two bins apart costs 2.
	got, _ = EMD([]float64{1, 0, 0}, []float64{0, 0, 1})
	if got != 2 {
		t.Errorf("EMD over 2 bins = %v, want 2", got)
	}
}

func TestEMDOrderSensitivity(t *testing.T) {
	// EMD sees bin adjacency; L1 does not.
	a := []float64{1, 0, 0}
	near := []float64{0, 1, 0}
	far := []float64{0, 0, 1}
	dNear, _ := EMD(a, near)
	dFar, _ := EMD(a, far)
	if dNear >= dFar {
		t.Errorf("EMD near=%v should be < far=%v", dNear, dFar)
	}
	l1Near, _ := L1(a, near)
	l1Far, _ := L1(a, far)
	if l1Near != l1Far {
		t.Errorf("L1 should not distinguish: %v vs %v", l1Near, l1Far)
	}
}

func TestL1L2MaxDiffKnown(t *testing.T) {
	p := []float64{0.8, 0.2}
	q := []float64{0.5, 0.5}
	if d, _ := L1(p, q); math.Abs(d-0.6) > 1e-12 {
		t.Errorf("L1 = %v, want 0.6", d)
	}
	if d, _ := L2(p, q); math.Abs(d-math.Sqrt(0.18)) > 1e-12 {
		t.Errorf("L2 = %v", d)
	}
	if d, _ := MaxDiff(p, q); math.Abs(d-0.3) > 1e-12 {
		t.Errorf("MaxDiff = %v, want 0.3", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	// Symmetry of the metrics (not KL), non-negativity, triangle for L1/L2.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []float64 {
			v := make([]float64, 5)
			for i := range v {
				v[i] = rng.Float64()
			}
			return Normalize(v)
		}
		p, q, r := mk(), mk(), mk()
		for _, fn := range []func(a, b []float64) (float64, error){EMD, L1, L2, MaxDiff} {
			ab, _ := fn(p, q)
			ba, _ := fn(q, p)
			if math.Abs(ab-ba) > 1e-12 || ab < 0 {
				return false
			}
		}
		for _, fn := range []func(a, b []float64) (float64, error){L1, L2, EMD} {
			pq, _ := fn(p, q)
			qr, _ := fn(q, r)
			pr, _ := fn(p, r)
			if pr > pq+qr+1e-12 {
				return false
			}
		}
		kl, _ := KLDivergence(p, q)
		return kl >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUsability(t *testing.T) {
	u8, err := Usability(8)
	if err != nil {
		t.Fatal(err)
	}
	if u8 != 1 {
		t.Errorf("Usability(8) = %v, want 1 (peak)", u8)
	}
	u3, _ := Usability(3)
	u4, _ := Usability(4)
	u40, _ := Usability(40)
	if !(u3 < u4 && u4 < u8) {
		t.Errorf("usability should rise toward the ideal: u3=%v u4=%v u8=%v", u3, u4, u8)
	}
	if u40 >= u8 {
		t.Errorf("too many bins should hurt: u40=%v", u40)
	}
	if _, err := Usability(0); err == nil {
		t.Error("expected error for 0 bins")
	}
}

func TestAccuracy(t *testing.T) {
	// Two bins, constant value within each bin: lossless, accuracy 1.
	counts := []float64{2, 2}
	sums := []float64{2, 8}    // values 1,1 and 4,4
	sumSqs := []float64{2, 32} // 1+1, 16+16
	a, err := Accuracy(counts, sums, sumSqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-12 {
		t.Errorf("lossless accuracy = %v, want 1", a)
	}
	// One bin holding everything: within-bin SSE = TSS, accuracy 0.
	a, err = Accuracy([]float64{4}, []float64{10}, []float64{34}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a) > 1e-12 {
		t.Errorf("single-bin accuracy = %v, want 0", a)
	}
	// Constant measure: accuracy 1 regardless of binning.
	a, _ = Accuracy([]float64{2, 2}, []float64{6, 6}, []float64{18, 18}, 0)
	if a != 1 {
		t.Errorf("constant measure accuracy = %v, want 1", a)
	}
	if _, err := Accuracy([]float64{1}, []float64{1, 2}, []float64{1}, 0); err == nil {
		t.Error("expected mismatch error")
	}
	if _, err := Accuracy(nil, nil, nil, 0); err == nil {
		t.Error("expected empty error")
	}
}

// TestAccuracyLargeMean pins the cancellation bug the shift parameter
// fixes: with raw second moments, values near 1e9 lose all within-bin
// variance to float64 rounding and accuracy collapses to a garbage value.
// Values {1e9, 1e9+1 | 1e9+2} (bins of sizes 2 and 1), moments shifted by
// s = 1e9: per-bin Σv = {2e9+1, 1e9+2}, Σ(v−s)² = {0²+1², 2²} = {1, 4}.
// Bin SSEs are 1−1²/2 = 0.5 and 4−2²/1 = 0; TSS over shifted values
// {0,1,2} is 2, so accuracy = 1 − 0.5/2 = 0.75 — recoverable only because
// the moments were accumulated relative to the shift.
func TestAccuracyLargeMean(t *testing.T) {
	const shift = 1e9
	counts := []float64{2, 1}
	sums := []float64{2e9 + 1, 1e9 + 2}
	sumSqs := []float64{1, 4}
	a, err := Accuracy(counts, sums, sumSqs, shift)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.75) > 1e-9 {
		t.Errorf("large-mean accuracy = %v, want 0.75", a)
	}
}

func TestAccuracyEmptyBinsIgnored(t *testing.T) {
	a, err := Accuracy([]float64{0, 2, 2}, []float64{0, 2, 8}, []float64{0, 2, 32}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-12 {
		t.Errorf("accuracy with empty bin = %v, want 1", a)
	}
}

func TestChiSquareCDFKnown(t *testing.T) {
	// χ²(k=1): CDF(x) = erf(√(x/2)).
	for _, x := range []float64{0.1, 1, 2, 5} {
		got, err := ChiSquareCDF(x, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Erf(math.Sqrt(x / 2))
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("ChiSquareCDF(%v, 1) = %v, want %v", x, got, want)
		}
	}
	// χ²(k=2) is Exp(1/2): CDF(x) = 1 − e^{−x/2}.
	for _, x := range []float64{0.5, 2, 10} {
		got, _ := ChiSquareCDF(x, 2)
		want := 1 - math.Exp(-x/2)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("ChiSquareCDF(%v, 2) = %v, want %v", x, got, want)
		}
	}
	if got, _ := ChiSquareCDF(-1, 3); got != 0 {
		t.Errorf("CDF of negative x = %v, want 0", got)
	}
	if _, err := ChiSquareCDF(1, 0); err == nil {
		t.Error("expected error for k=0")
	}
}

func TestChiSquareCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(20)
		x1 := rng.Float64() * 30
		x2 := x1 + rng.Float64()*10
		c1, err1 := ChiSquareCDF(x1, k)
		c2, err2 := ChiSquareCDF(x2, k)
		if err1 != nil || err2 != nil {
			return false
		}
		return c2 >= c1-1e-12 && c1 >= 0 && c2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPValueScore(t *testing.T) {
	ref := []float64{0.25, 0.25, 0.25, 0.25}
	// Target matching the reference: unremarkable, score near 0.
	low, err := PValueScore([]float64{25, 25, 25, 25}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if low > 0.2 {
		t.Errorf("matching target scored %v, want near 0", low)
	}
	// Target concentrated in one bin: extreme, score near 1.
	high, err := PValueScore([]float64{100, 0, 0, 0}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if high < 0.99 {
		t.Errorf("extreme target scored %v, want near 1", high)
	}
	if low >= high {
		t.Error("extreme target must outscore matching target")
	}
	// Mass where the reference has none: maximally surprising.
	s, err := PValueScore([]float64{5, 5}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("impossible-bin score = %v, want 1", s)
	}
	// No data at all.
	if s, _ := PValueScore([]float64{0, 0}, []float64{0.5, 0.5}); s != 0 {
		t.Errorf("empty target score = %v, want 0", s)
	}
	if _, err := PValueScore([]float64{-1, 1}, []float64{0.5, 0.5}); err == nil {
		t.Error("expected error for negative counts")
	}
}

func TestPValueScoreGrowsWithSampleSize(t *testing.T) {
	// The same relative skew is more significant with more data.
	ref := []float64{0.5, 0.5}
	small, _ := PValueScore([]float64{6, 4}, ref)
	large, _ := PValueScore([]float64{600, 400}, ref)
	if small >= large {
		t.Errorf("significance should grow with n: small=%v large=%v", small, large)
	}
}

func TestJensenShannonKnown(t *testing.T) {
	// Identical distributions: 0. Disjoint: ln 2.
	p := []float64{0.5, 0.5, 0, 0}
	if d, err := JensenShannon(p, p); err != nil || d > 1e-12 {
		t.Errorf("JS(p,p) = %v, %v", d, err)
	}
	q := []float64{0, 0, 0.5, 0.5}
	d, err := JensenShannon(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-math.Ln2) > 1e-12 {
		t.Errorf("JS disjoint = %v, want ln 2", d)
	}
	// Symmetric.
	d2, _ := JensenShannon(q, p)
	if math.Abs(d-d2) > 1e-12 {
		t.Error("JS must be symmetric")
	}
	if _, err := JensenShannon(p, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestHellingerKnown(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if d, _ := Hellinger(p, q); d != 1 {
		t.Errorf("disjoint Hellinger = %v, want 1", d)
	}
	if d, _ := Hellinger(p, p); d > 1e-12 {
		t.Errorf("identical Hellinger = %v", d)
	}
	a := Normalize([]float64{3, 1})
	b := Normalize([]float64{1, 3})
	d, _ := Hellinger(a, b)
	if d <= 0 || d >= 1 {
		t.Errorf("Hellinger = %v, want in (0,1)", d)
	}
}

func TestChiSquareDistanceKnown(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	// ½[(0.25²/0.75) + (0.25²/1.25)] = ½[1/12 + 1/20]
	want := 0.5 * (0.0625/0.75 + 0.0625/1.25)
	d, err := ChiSquareDistance(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("chi2 distance = %v, want %v", d, want)
	}
	// Symmetric, zero on identity, empty pairs skipped.
	d2, _ := ChiSquareDistance(q, p)
	if d != d2 {
		t.Error("chi2 distance must be symmetric")
	}
	if d, _ := ChiSquareDistance([]float64{0, 1}, []float64{0, 1}); d != 0 {
		t.Errorf("identical chi2 distance = %v", d)
	}
}

func TestExtraMetricsProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []float64 {
			v := make([]float64, 6)
			for i := range v {
				v[i] = rng.Float64()
			}
			return Normalize(v)
		}
		p, q := mk(), mk()
		js, err1 := JensenShannon(p, q)
		h, err2 := Hellinger(p, q)
		c, err3 := ChiSquareDistance(p, q)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return js >= 0 && js <= math.Ln2+1e-12 && h >= 0 && h <= 1 && c >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
