package metric

import "math"

// JensenShannon returns the Jensen–Shannon divergence between two
// distributions: the symmetrised, always-finite relative of KL divergence,
// bounded by ln 2. Some view-recommendation systems prefer it to raw KL
// because empty bins need no smoothing.
func JensenShannon(p, q []float64) (float64, error) {
	if err := checkPair(p, q); err != nil {
		return 0, err
	}
	d := 0.0
	for i := range p {
		m := (p[i] + q[i]) / 2
		if p[i] > 0 && m > 0 {
			d += 0.5 * p[i] * math.Log(p[i]/m)
		}
		if q[i] > 0 && m > 0 {
			d += 0.5 * q[i] * math.Log(q[i]/m)
		}
	}
	if d < 0 {
		d = 0
	}
	return d, nil
}

// Hellinger returns the Hellinger distance H(p, q) =
// √(1 − Σ√(pᵢ·qᵢ)) ∈ [0, 1] — a true metric on distributions.
func Hellinger(p, q []float64) (float64, error) {
	if err := checkPair(p, q); err != nil {
		return 0, err
	}
	bc := 0.0 // Bhattacharyya coefficient
	for i := range p {
		if p[i] > 0 && q[i] > 0 {
			bc += math.Sqrt(p[i] * q[i])
		}
	}
	if bc > 1 {
		bc = 1
	}
	return math.Sqrt(1 - bc), nil
}

// ChiSquareDistance returns the (symmetric) χ² distance
// ½ Σ (pᵢ−qᵢ)²/(pᵢ+qᵢ), with empty bin pairs contributing nothing.
func ChiSquareDistance(p, q []float64) (float64, error) {
	if err := checkPair(p, q); err != nil {
		return 0, err
	}
	d := 0.0
	for i := range p {
		s := p[i] + q[i]
		if s <= 0 {
			continue
		}
		t := p[i] - q[i]
		d += t * t / s
	}
	return d / 2, nil
}
