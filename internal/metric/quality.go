package metric

import (
	"fmt"
	"math"
)

// idealBins is the bin count at which the Usability score peaks. Around
// 7–9 bars is the uncluttered sweet spot MuVE's relative-bin-width metric
// rewards: fewer bins under-resolve the data, more bins clutter the chart.
const idealBins = 8

// Usability quantifies the visual quality of a view via the relative bin
// width, following MuVE [5]: the score is 1 at the ideal bin count and
// decays symmetrically in log-space as bins get relatively narrower
// (too many) or wider (too few). The result is in (0, 1].
func Usability(bins int) (float64, error) {
	if bins <= 0 {
		return 0, fmt.Errorf("metric: usability needs ≥ 1 bin, got %d", bins)
	}
	return 1 / (1 + math.Abs(math.Log2(float64(bins)/idealBins))), nil
}

// Accuracy quantifies how faithfully the binned view represents the raw
// measure values, following MuVE [5]: the within-bin Sum of Squared Errors
// of the measure around each bin's mean, normalised by the total sum of
// squares, mapped so that 1 is a lossless view and values fall toward 0 as
// binning discards more structure.
//
// counts[i] and sums[i] are the per-bin count and Σv of the target view's
// measure values; sumSqs[i] is Σ(v−shift)², the second moment accumulated
// about the caller-chosen constant shift (pass 0 when raw sums of squares
// are supplied). Computing SSE and TSS from moments shifted near the data
// — view.Stats shifts by the measure's first value — avoids the
// catastrophic cancellation of the naive Σv² − (Σv)²/n form, which
// collapses to 0 whenever the measure's mean is large relative to its
// spread. The shifted forms are algebraically identical: Σ(v−s)² −
// (Σ(v−s))²/c equals Σv² − (Σv)²/c for any s.
func Accuracy(counts []float64, sums []float64, sumSqs []float64, shift float64) (float64, error) {
	if len(counts) != len(sums) || len(counts) != len(sumSqs) {
		return 0, fmt.Errorf("metric: accuracy inputs have mismatched lengths %d/%d/%d",
			len(counts), len(sums), len(sumSqs))
	}
	if len(counts) == 0 {
		return 0, fmt.Errorf("metric: accuracy needs at least one bin")
	}
	var n, total, totalSq float64
	sse := 0.0
	for i := range counts {
		c := counts[i]
		if c <= 0 {
			continue
		}
		n += c
		total += sums[i]
		totalSq += sumSqs[i]
		// Within-bin SSE: Σ(v−s)² − (Σ(v−s))²/c, with Σ(v−s) = Σv − c·s.
		s := sums[i] - c*shift
		sse += sumSqs[i] - s*s/c
	}
	if n == 0 {
		return 0, nil
	}
	ts := total - n*shift    // Σ(v−s) over every counted bin
	tss := totalSq - ts*ts/n // total sum of squares around the grand mean
	if tss <= 1e-12 {
		return 1, nil // constant measure: any binning is lossless
	}
	if sse < 0 {
		sse = 0
	}
	r := 1 - sse/tss
	if r < 0 {
		r = 0
	}
	return r, nil
}

// PValueScore converts a χ² goodness-of-fit test of the target histogram
// against the reference distribution into an interestingness score in
// [0, 1]: 1 − p-value, so more extreme targets (smaller p) score higher,
// matching how the paper uses p-value as a utility component [26]. The null
// hypothesis is "the target is drawn from the reference distribution".
//
// targetCounts are the raw (un-normalised) per-bin counts of the target
// view; refDist is the normalised reference distribution.
func PValueScore(targetCounts []float64, refDist []float64) (float64, error) {
	if err := checkPair(targetCounts, refDist); err != nil {
		return 0, err
	}
	n := 0.0
	for _, c := range targetCounts {
		if c < 0 {
			return 0, fmt.Errorf("metric: negative target count %g", c)
		}
		n += c
	}
	return PValueScoreN(targetCounts, n, refDist)
}
