package metric

import (
	"fmt"
	"math"
)

// ChiSquareCDF returns P(X ≤ x) for a χ² distribution with k degrees of
// freedom, computed as the regularised lower incomplete gamma function
// P(k/2, x/2).
func ChiSquareCDF(x float64, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("metric: chi-square needs k ≥ 1, got %d", k)
	}
	if x <= 0 {
		return 0, nil
	}
	return regularizedGammaP(float64(k)/2, x/2)
}

// regularizedGammaP computes P(a, x) = γ(a, x)/Γ(a) using the series
// expansion for x < a+1 and the continued fraction for the complement
// otherwise (Numerical Recipes 6.2).
func regularizedGammaP(a, x float64) (float64, error) {
	if x < 0 || a <= 0 {
		return 0, fmt.Errorf("metric: invalid incomplete gamma arguments a=%g x=%g", a, x)
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	q, err := gammaContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("metric: gamma series did not converge for a=%g x=%g", a, x)
}

func gammaContinuedFraction(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("metric: gamma continued fraction did not converge for a=%g x=%g", a, x)
}
