package metric

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchDists(bins int) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	mk := func() []float64 {
		v := make([]float64, bins)
		for i := range v {
			v[i] = rng.Float64()
		}
		return Normalize(v)
	}
	return mk(), mk()
}

// scalarDeviations is the per-call path the fused kernel replaces; the
// function slice is built once (not inside any timed loop) so the
// benchmark measures the metric math, not slice construction.
var scalarDeviations = []func(p, q []float64) (float64, error){
	KLDivergence, EMD, L1, L2, MaxDiff,
}

// BenchmarkAllDeviations times the five scalar deviation calls on one
// pair at realistic bin counts (views run 3–256 bins, not just 10).
func BenchmarkAllDeviations(b *testing.B) {
	for _, bins := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			p, q := benchDists(bins)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range scalarDeviations {
					if _, err := f(p, q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkDeviationsAll times the fused kernel on the same pairs; the
// ratio against BenchmarkAllDeviations is the single-pair speedup (the
// layout-block speedup is benchmarked in internal/feature).
func BenchmarkDeviationsAll(b *testing.B) {
	for _, bins := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			p, q := benchDists(bins)
			out := make([]float64, NumDeviations)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := DeviationsAll(p, q, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPValueScore(b *testing.B) {
	_, q := benchDists(10)
	counts := make([]float64, 10)
	for i := range counts {
		counts[i] = float64(10 + i*7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PValueScore(counts, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChiSquareCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ChiSquareCDF(12.5, 9); err != nil {
			b.Fatal(err)
		}
	}
}
