package metric

import (
	"math/rand"
	"testing"
)

func benchDists(bins int) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	mk := func() []float64 {
		v := make([]float64, bins)
		for i := range v {
			v[i] = rng.Float64()
		}
		return Normalize(v)
	}
	return mk(), mk()
}

func BenchmarkAllDeviations(b *testing.B) {
	p, q := benchDists(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range []func(a, b []float64) (float64, error){KLDivergence, EMD, L1, L2, MaxDiff} {
			if _, err := f(p, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPValueScore(b *testing.B) {
	_, q := benchDists(10)
	counts := make([]float64, 10)
	for i := range counts {
		counts[i] = float64(10 + i*7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PValueScore(counts, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChiSquareCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ChiSquareCDF(12.5, 9); err != nil {
			b.Fatal(err)
		}
	}
}
