package metric

import (
	"fmt"
	"math"
)

// epsilon smooths zero bins for KL divergence so empty bins do not produce
// infinities; it is far below any mass a real view can carry.
const epsilon = 1e-9

func checkPair(p, q []float64) error {
	if len(p) != len(q) {
		return fmt.Errorf("metric: distributions have %d and %d bins", len(p), len(q))
	}
	if len(p) == 0 {
		return fmt.Errorf("metric: empty distributions")
	}
	return nil
}

// KLDivergence returns D(p‖q) = Σ p·log(p/q) with epsilon smoothing. It is
// the "sum of deviation in individual bins" component of the paper.
func KLDivergence(p, q []float64) (float64, error) {
	if err := checkPair(p, q); err != nil {
		return 0, err
	}
	d := 0.0
	for i := range p {
		pi := p[i]
		if pi <= 0 {
			continue
		}
		qi := q[i]
		if qi < epsilon {
			qi = epsilon
		}
		d += pi * math.Log(pi/qi)
	}
	if d < 0 {
		d = 0 // guard tiny negative residue from smoothing
	}
	return d, nil
}

// EMD returns the 1-D Earth Mover's Distance between two distributions on
// the same ordered bins: the L1 distance of their CDFs. It is the
// "deviations across bins" component.
func EMD(p, q []float64) (float64, error) {
	if err := checkPair(p, q); err != nil {
		return 0, err
	}
	d, c := 0.0, 0.0
	for i := range p {
		c += p[i] - q[i]
		d += math.Abs(c)
	}
	return d, nil
}

// L1 returns the Manhattan distance Σ|pᵢ−qᵢ|.
func L1(p, q []float64) (float64, error) {
	if err := checkPair(p, q); err != nil {
		return 0, err
	}
	d := 0.0
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d, nil
}

// L2 returns the Euclidean distance √Σ(pᵢ−qᵢ)².
func L2(p, q []float64) (float64, error) {
	if err := checkPair(p, q); err != nil {
		return 0, err
	}
	d := 0.0
	for i := range p {
		t := p[i] - q[i]
		d += t * t
	}
	return math.Sqrt(d), nil
}

// MaxDiff returns the maximum per-bin deviation max|pᵢ−qᵢ|.
func MaxDiff(p, q []float64) (float64, error) {
	if err := checkPair(p, q); err != nil {
		return 0, err
	}
	m := 0.0
	for i := range p {
		if d := math.Abs(p[i] - q[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// Normalize scales non-negative bin values into a probability distribution
// (Eq. 5). An all-zero histogram normalises to the uniform distribution so
// downstream distances stay defined.
func Normalize(bins []float64) []float64 {
	out := make([]float64, len(bins))
	total := 0.0
	for _, v := range bins {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		u := 1 / float64(len(bins))
		for i := range out {
			out[i] = u
		}
		return out
	}
	for i, v := range bins {
		if v > 0 {
			out[i] = v / total
		}
	}
	return out
}
