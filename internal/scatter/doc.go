// Package scatter extends ViewSeeker to scatter-plot views — the first
// item on the paper's future-work list ("extend it to support more
// visualization types, such as scatter plot, line chart etc."). A scatter
// view is an unordered pair of measure attributes (x, y); its target
// plots the query subset DQ, its reference the whole dataset DR. Utility
// features capture how differently the two populations co-vary: the
// change in Pearson correlation and regression slope, the standardised
// mean shift of the subset, and its support. The resulting feature matrix
// plugs into the same active-learning core as histogram views.
//
// # Contracts
//
// The scatter feature matrix obeys the same invariants as the histogram
// one (see internal/feature): deterministic in its inputs, rows computed
// into disjoint slots so worker count never changes a byte, and never
// returned partially on cancellation.
package scatter
