package scatter

import (
	"fmt"
	"math"
	"strings"

	"viewseeker/internal/dataset"
	"viewseeker/internal/feature"
	"viewseeker/internal/view"
)

// Spec identifies one scatter view: the x and y measure attributes.
type Spec struct {
	X, Y string
}

// String renders the spec, e.g. "SCATTER(points, assists)".
func (s Spec) String() string { return fmt.Sprintf("SCATTER(%s, %s)", s.X, s.Y) }

// Summary holds the second-order statistics of one measure pair over one
// table: enough to reconstruct means, variances, Pearson correlation and
// the least-squares slope of y on x.
type Summary struct {
	N            float64
	MeanX, MeanY float64
	VarX, VarY   float64
	Corr         float64 // Pearson r; 0 when either variance is 0
	Slope        float64 // cov(x,y)/var(x); 0 when var(x) is 0
	MinX, MaxX   float64
	MinY, MaxY   float64
}

// Summarize scans one table (all rows) and computes the pair summary.
// Rows where either value is NULL are skipped.
func Summarize(t *dataset.Table, x, y string) (Summary, error) {
	cx, cy := t.Column(x), t.Column(y)
	if cx == nil || cy == nil {
		return Summary{}, fmt.Errorf("scatter: table %q lacks column %q or %q", t.Name, x, y)
	}
	var s Summary
	s.MinX, s.MaxX = math.Inf(1), math.Inf(-1)
	s.MinY, s.MaxY = math.Inf(1), math.Inf(-1)
	var sumX, sumY, sumXX, sumYY, sumXY float64
	for r := 0; r < t.NumRows(); r++ {
		vx, okx := cx.Float(r)
		vy, oky := cy.Float(r)
		if !okx || !oky {
			continue
		}
		s.N++
		sumX += vx
		sumY += vy
		sumXX += vx * vx
		sumYY += vy * vy
		sumXY += vx * vy
		s.MinX = math.Min(s.MinX, vx)
		s.MaxX = math.Max(s.MaxX, vx)
		s.MinY = math.Min(s.MinY, vy)
		s.MaxY = math.Max(s.MaxY, vy)
	}
	if s.N == 0 {
		return s, nil
	}
	s.MeanX = sumX / s.N
	s.MeanY = sumY / s.N
	s.VarX = sumXX/s.N - s.MeanX*s.MeanX
	s.VarY = sumYY/s.N - s.MeanY*s.MeanY
	if s.VarX < 0 {
		s.VarX = 0
	}
	if s.VarY < 0 {
		s.VarY = 0
	}
	cov := sumXY/s.N - s.MeanX*s.MeanY
	if s.VarX > 1e-12 && s.VarY > 1e-12 {
		s.Corr = cov / math.Sqrt(s.VarX*s.VarY)
		// Clamp fp noise.
		if s.Corr > 1 {
			s.Corr = 1
		}
		if s.Corr < -1 {
			s.Corr = -1
		}
	}
	if s.VarX > 1e-12 {
		s.Slope = cov / s.VarX
	}
	return s, nil
}

// Pair is one scatter view executed over the target subset and reference
// dataset.
type Pair struct {
	Spec      Spec
	Target    Summary
	Reference Summary
}

// FeatureNames are the scatter utility components, in matrix column
// order.
var FeatureNames = []string{
	"CORR_DIFF",    // |r_target − r_reference|
	"CORR_TARGET",  // |r_target|: how structured the subset itself is
	"SLOPE_DIFF",   // normalised slope change of y on x
	"MEAN_SHIFT_X", // |Δmean(x)| in reference standard deviations
	"MEAN_SHIFT_Y", // |Δmean(y)| in reference standard deviations
	"SPREAD_RATIO", // how much tighter/looser the subset is overall
}

// Features computes the utility-feature vector of one pair.
func Features(p *Pair) []float64 {
	tgt, ref := p.Target, p.Reference
	out := make([]float64, len(FeatureNames))
	out[0] = math.Abs(tgt.Corr - ref.Corr)
	out[1] = math.Abs(tgt.Corr)
	slopeScale := math.Abs(ref.Slope)
	if slopeScale < 1e-9 {
		slopeScale = 1
	}
	out[2] = math.Tanh(math.Abs(tgt.Slope-ref.Slope) / slopeScale)
	if ref.VarX > 1e-12 {
		out[3] = math.Abs(tgt.MeanX-ref.MeanX) / math.Sqrt(ref.VarX)
	}
	if ref.VarY > 1e-12 {
		out[4] = math.Abs(tgt.MeanY-ref.MeanY) / math.Sqrt(ref.VarY)
	}
	if ref.VarX > 1e-12 && ref.VarY > 1e-12 && tgt.N > 1 {
		ratio := math.Sqrt((tgt.VarX + tgt.VarY) / (ref.VarX + ref.VarY))
		out[5] = math.Abs(math.Log1p(ratio) - math.Log1p(1))
	}
	return out
}

// Enumerate lists every unordered measure pair of the table's schema.
func Enumerate(t *dataset.Table) ([]Spec, error) {
	measures := t.Schema.Measures()
	if len(measures) < 2 {
		return nil, fmt.Errorf("scatter: table %q needs at least two measures", t.Name)
	}
	var specs []Spec
	for i := 0; i < len(measures); i++ {
		for j := i + 1; j < len(measures); j++ {
			specs = append(specs, Spec{X: measures[i], Y: measures[j]})
		}
	}
	return specs, nil
}

// BuildMatrix executes the whole scatter view space and packages it as a
// feature.Matrix so core.Seeker can drive a session over it. All rows are
// exact (scatter summaries are single-pass and cheap, so there is no
// α-sampling tier). The returned specs align with matrix row indices.
func BuildMatrix(ref, tgt *dataset.Table) (*feature.Matrix, []Spec, error) {
	specs, err := Enumerate(ref)
	if err != nil {
		return nil, nil, err
	}
	m := &feature.Matrix{
		Names: FeatureNames,
		Rows:  make([][]float64, len(specs)),
		Exact: make([]bool, len(specs)),
	}
	for i, s := range specs {
		p, err := Execute(ref, tgt, s)
		if err != nil {
			return nil, nil, err
		}
		m.Rows[i] = Features(p)
		m.Exact[i] = true
		// Synthesised view.Spec keeps core's family bookkeeping meaningful:
		// a scatter view is its own family.
		m.Specs = append(m.Specs, view.Spec{Dimension: s.X, Measure: s.Y, Agg: "SCATTER"})
	}
	return m, specs, nil
}

// Execute runs one scatter view: both summaries.
func Execute(ref, tgt *dataset.Table, s Spec) (*Pair, error) {
	r, err := Summarize(ref, s.X, s.Y)
	if err != nil {
		return nil, err
	}
	t, err := Summarize(tgt, s.X, s.Y)
	if err != nil {
		return nil, err
	}
	return &Pair{Spec: s, Target: t, Reference: r}, nil
}

// Render draws the pair as two side-by-side ASCII density grids (target
// left, reference right) over the reference's axis ranges.
func (p *Pair) Render(ref, tgt *dataset.Table, width, height int) (string, error) {
	if width <= 0 {
		width = 24
	}
	if height <= 0 {
		height = 10
	}
	grid := func(t *dataset.Table) ([][]int, int, error) {
		cx, cy := t.Column(p.Spec.X), t.Column(p.Spec.Y)
		if cx == nil || cy == nil {
			return nil, 0, fmt.Errorf("scatter: table %q lacks %s/%s", t.Name, p.Spec.X, p.Spec.Y)
		}
		g := make([][]int, height)
		for i := range g {
			g[i] = make([]int, width)
		}
		maxCell := 0
		spanX := p.Reference.MaxX - p.Reference.MinX
		spanY := p.Reference.MaxY - p.Reference.MinY
		if spanX <= 0 {
			spanX = 1
		}
		if spanY <= 0 {
			spanY = 1
		}
		for r := 0; r < t.NumRows(); r++ {
			vx, okx := cx.Float(r)
			vy, oky := cy.Float(r)
			if !okx || !oky {
				continue
			}
			i := int((p.Reference.MaxY - vy) / spanY * float64(height-1))
			j := int((vx - p.Reference.MinX) / spanX * float64(width-1))
			if i < 0 || i >= height || j < 0 || j >= width {
				continue
			}
			g[i][j]++
			if g[i][j] > maxCell {
				maxCell = g[i][j]
			}
		}
		return g, maxCell, nil
	}
	tg, tMax, err := grid(tgt)
	if err != nil {
		return "", err
	}
	rg, rMax, err := grid(ref)
	if err != nil {
		return "", err
	}
	shades := []byte(" .:*#@")
	cell := func(v, max int) byte {
		if v == 0 || max == 0 {
			return ' '
		}
		idx := 1 + v*(len(shades)-2)/max
		if idx >= len(shades) {
			idx = len(shades) - 1
		}
		return shades[idx]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — target (DQ) | reference (DR), y=%s up, x=%s right\n", p.Spec, p.Spec.Y, p.Spec.X)
	for i := 0; i < height; i++ {
		for j := 0; j < width; j++ {
			sb.WriteByte(cell(tg[i][j], tMax))
		}
		sb.WriteString(" | ")
		for j := 0; j < width; j++ {
			sb.WriteByte(cell(rg[i][j], rMax))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "target r=%.2f  reference r=%.2f\n", p.Target.Corr, p.Reference.Corr)
	return sb.String(), nil
}
