package scatter

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"viewseeker/internal/core"
	"viewseeker/internal/dataset"
)

// corrTable builds a table whose subset rows correlate m1–m2 strongly
// while the rest are independent.
func corrTable(t *testing.T, rows int, seed int64) (ref, tgt *dataset.Table) {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "grp", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m1", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "m2", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "m3", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	ref = dataset.NewTable("ref", schema)
	rng := rand.New(rand.NewSource(seed))
	var sel []int
	for i := 0; i < rows; i++ {
		inSubset := i%10 == 0
		x := rng.NormFloat64()
		y := rng.NormFloat64()
		if inSubset {
			y = x*2 + rng.NormFloat64()*0.1 // strong linear relation
		}
		grp := "rest"
		if inSubset {
			grp = "special"
			sel = append(sel, i)
		}
		ref.MustAppendRow(dataset.StringVal(grp), dataset.Float(x), dataset.Float(y), dataset.Float(rng.NormFloat64()))
	}
	return ref, ref.Subset("tgt", sel)
}

func TestSummarizeKnownValues(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "x", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "y", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	tab := dataset.NewTable("t", schema)
	// y = 3x exactly.
	for _, x := range []float64{1, 2, 3, 4} {
		tab.MustAppendRow(dataset.Float(x), dataset.Float(3*x))
	}
	s, err := Summarize(tab, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.MeanX != 2.5 || s.MeanY != 7.5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Corr-1) > 1e-12 {
		t.Errorf("corr = %v, want 1", s.Corr)
	}
	if math.Abs(s.Slope-3) > 1e-12 {
		t.Errorf("slope = %v, want 3", s.Slope)
	}
	if s.MinX != 1 || s.MaxX != 4 || s.MinY != 3 || s.MaxY != 12 {
		t.Errorf("ranges wrong: %+v", s)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "x", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "y", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	tab := dataset.NewTable("t", schema)
	for i := 0; i < 3; i++ {
		tab.MustAppendRow(dataset.Float(5), dataset.Float(float64(i)))
	}
	s, err := Summarize(tab, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if s.Corr != 0 || s.Slope != 0 {
		t.Errorf("constant x must give corr=slope=0: %+v", s)
	}
	// Empty table.
	empty := dataset.NewTable("e", tab.Schema)
	s, err = Summarize(empty, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 0 {
		t.Errorf("empty N = %v", s.N)
	}
	if _, err := Summarize(tab, "x", "nope"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestSummarizeSkipsNulls(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "x", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "y", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	tab := dataset.NewTable("t", schema)
	tab.MustAppendRow(dataset.Float(1), dataset.Float(2))
	tab.MustAppendRow(dataset.Null, dataset.Float(100))
	tab.MustAppendRow(dataset.Float(3), dataset.Null)
	s, err := Summarize(tab, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1 {
		t.Errorf("N = %v, want 1 (null rows skipped)", s.N)
	}
}

func TestCorrBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := dataset.MustSchema(
			dataset.ColumnDef{Name: "x", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
			dataset.ColumnDef{Name: "y", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		)
		tab := dataset.NewTable("t", schema)
		for i := 0; i < 30; i++ {
			tab.MustAppendRow(dataset.Float(rng.NormFloat64()), dataset.Float(rng.NormFloat64()))
		}
		s, err := Summarize(tab, "x", "y")
		if err != nil {
			return false
		}
		return s.Corr >= -1 && s.Corr <= 1 && s.VarX >= 0 && s.VarY >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEnumerate(t *testing.T) {
	ref, _ := corrTable(t, 100, 1)
	specs, err := Enumerate(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 { // C(3,2)
		t.Fatalf("specs = %d, want 3", len(specs))
	}
	// One-measure table fails.
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	if _, err := Enumerate(dataset.NewTable("t", schema)); err == nil {
		t.Error("needs ≥2 measures")
	}
}

func TestFeaturesDetectCorrelationShift(t *testing.T) {
	ref, tgt := corrTable(t, 3000, 2)
	pCorr, err := Execute(ref, tgt, Spec{X: "m1", Y: "m2"})
	if err != nil {
		t.Fatal(err)
	}
	pNoise, err := Execute(ref, tgt, Spec{X: "m1", Y: "m3"})
	if err != nil {
		t.Fatal(err)
	}
	fCorr, fNoise := Features(pCorr), Features(pNoise)
	if fCorr[0] <= fNoise[0] {
		t.Errorf("CORR_DIFF should be larger for the correlated pair: %v vs %v", fCorr[0], fNoise[0])
	}
	if pCorr.Target.Corr < 0.9 {
		t.Errorf("target corr = %v, want ~1", pCorr.Target.Corr)
	}
	if math.Abs(pCorr.Reference.Corr) > 0.4 {
		t.Errorf("reference corr = %v, want small", pCorr.Reference.Corr)
	}
}

func TestBuildMatrixAndSession(t *testing.T) {
	// End-to-end: the active-learning core drives a scatter session and a
	// correlation-hunting user gets the m1–m2 view recommended first.
	ref, tgt := corrTable(t, 3000, 3)
	m, specs, err := BuildMatrix(ref, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 || len(specs) != 3 {
		t.Fatalf("matrix len = %d", m.Len())
	}
	if !m.AllExact() {
		t.Error("scatter matrix must be exact")
	}
	seeker, err := core.NewSeeker(m, core.Config{K: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	corrDiffIdx := 0
	for i := 0; i < 3; i++ {
		next, err := seeker.NextViews()
		if err != nil {
			t.Fatal(err)
		}
		if len(next) == 0 {
			break
		}
		label := m.Rows[next[0]][corrDiffIdx]
		if label > 1 {
			label = 1
		}
		if err := seeker.Feedback(next[0], label); err != nil {
			t.Fatal(err)
		}
	}
	best := seeker.TopK()[0]
	if specs[best].X != "m1" || specs[best].Y != "m2" {
		t.Errorf("top scatter view = %v, want m1–m2", specs[best])
	}
}

func TestRender(t *testing.T) {
	ref, tgt := corrTable(t, 500, 4)
	p, err := Execute(ref, tgt, Spec{X: "m1", Y: "m2"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Render(ref, tgt, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 10 { // header + 8 grid rows + footer
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "target r=") {
		t.Error("render missing correlation footer")
	}
	if !strings.Contains(out, "|") {
		t.Error("render missing separator")
	}
}

func TestSpecString(t *testing.T) {
	if got := (Spec{X: "a", Y: "b"}).String(); got != "SCATTER(a, b)" {
		t.Errorf("String = %q", got)
	}
}
