module viewseeker

go 1.22
