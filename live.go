package viewseeker

import (
	"fmt"
	"sync"

	"viewseeker/internal/feature"
	"viewseeker/internal/live"
	"viewseeker/internal/sql"
	"viewseeker/internal/view"
	"viewseeker/internal/wal"
)

// LiveTable is a WAL-backed appendable table: a base snapshot plus a
// durable redo log of append batches, published as immutable versions so
// readers and recommendation sessions are never invalidated mid-flight.
type LiveTable = live.Table

// LiveRecovery reports what replaying a live table's write-ahead log
// found: the last committed sequence, whether a torn tail from a crash
// mid-append was truncated, and how many already-checkpointed frames were
// skipped.
type LiveRecovery = wal.Recovery

// LiveOptions configures a live table: WAL fsync batching, append retry
// policy, and the auto-checkpoint threshold (see live.Options).
type LiveOptions = live.Options

// OpenLiveTable opens (creating if needed) the write-ahead log at walPath
// and replays its committed batches over base (or over the newest
// checkpoint snapshot, when one exists), returning the live table at its
// last committed version. base must be the same snapshot the log was
// started against. syncEvery batches one fsync per that many appends
// (<= 1 syncs every append — full durability).
func OpenLiveTable(walPath string, base *Table, syncEvery int) (*LiveTable, *LiveRecovery, error) {
	return OpenLiveTableOptions(walPath, base, LiveOptions{SyncEvery: syncEvery})
}

// OpenLiveTableOptions is OpenLiveTable with the full option set —
// notably CheckpointBytes, which bounds recovery replay by periodically
// persisting the current version as a snapshot and compacting the log.
func OpenLiveTableOptions(walPath string, base *Table, opts LiveOptions) (*LiveTable, *LiveRecovery, error) {
	return live.Open(nil, walPath, base, opts)
}

// Maintained is an incrementally maintained offline result over a live
// table: the view-space bin indexes, scan statistics and utility-feature
// matrix for one exploration query, kept current as the table grows.
// Advance folds newly appended rows into the cached scans (bit-identical
// to recomputing from scratch, at a fraction of the cost) instead of
// rerunning the offline pass; NewSession mints interactive sessions from
// the current state without paying the offline phase again.
//
// Maintenance is exact-only: Options.Alpha is forced to 1, because
// α-sampled matrices are tied to one session's refinement run and cannot
// be extended across appends.
//
// Bin layouts are pinned to the table Maintain saw: incremental updates
// never re-fit bin boundaries (that is what makes them bit-identical to a
// pinned-layout recomputation), so appended values outside a numeric
// dimension's original range fall out of its histogram. Advance tracks
// that escape rate per layout and, when any layout's cumulative rate
// crosses Options.DriftThreshold, rebuilds from scratch — re-fitting
// every layout to the current data (counted in Stats.DriftRebuilds).
type Maintained struct {
	mu       sync.Mutex
	lt       *LiveTable
	query    string
	opts     Options
	registry *feature.Registry
	spaceCfg view.SpaceConfig
	// driftThreshold is the resolved Options.DriftThreshold (< 0 disabled).
	driftThreshold float64

	seq    uint64
	ref    *Table
	target *Table
	gen    *view.Generator
	matrix *feature.Matrix

	// suffixable marks the query row-local (non-aggregate projections plus
	// at most a WHERE filter): its result over an extended table is its
	// old result plus its result over the appended suffix, so Advance
	// evaluates it over the suffix only instead of rescanning the table.
	suffixable bool

	extended, rebuilt, driftRebuilds int
}

// rowLocal reports whether a statement's result over a prefix-extended
// table is always a prefix extension of its old result, computable from
// the appended rows alone: each output row must be a pure function of one
// input row. That is any WHERE-only projection — SELECT * or a list of
// non-aggregate expressions, with at most a WHERE clause. DISTINCT,
// aggregation, grouping, ordering and limits all let appended rows change
// or reorder earlier result rows.
func rowLocal(stmt *sql.SelectStmt) bool {
	if stmt.From == "" || stmt.Distinct || len(stmt.GroupBy) > 0 || stmt.Having != nil ||
		len(stmt.OrderBy) > 0 || stmt.Limit >= 0 {
		return false
	}
	for _, it := range stmt.Items {
		if it.Star {
			continue
		}
		if it.Expr == nil || sql.ContainsAggregate(it.Expr) {
			return false
		}
	}
	return stmt.Where == nil || !sql.ContainsAggregate(stmt.Where)
}

// Maintain runs the offline phase for query over the live table's current
// version and keeps the result for incremental maintenance. opts follows
// New, except Alpha is forced to 1 (exact) and Cache is ignored — the
// maintained state is itself the cache, addressed by the table's version.
func Maintain(lt *LiveTable, query string, opts Options) (*Maintained, error) {
	if lt == nil {
		return nil, fmt.Errorf("viewseeker: nil live table")
	}
	opts.Alpha = 1
	opts.Cache = nil
	registry, err := buildRegistry(opts)
	if err != nil {
		return nil, err
	}
	spaceCfg := view.SpaceConfig{
		Aggs: opts.Aggs, BinCounts: opts.BinCounts, EqualDepth: opts.EqualDepth,
	}.Normalized()
	m := &Maintained{lt: lt, query: query, opts: opts, registry: registry, spaceCfg: spaceCfg}
	m.driftThreshold = opts.DriftThreshold
	if m.driftThreshold == 0 {
		m.driftThreshold = DefaultDriftThreshold
	}
	if stmt, perr := sql.Parse(query); perr == nil {
		m.suffixable = rowLocal(stmt)
	}
	ref, seq := lt.Snapshot()
	if err := m.rebuild(ref, seq); err != nil {
		return nil, err
	}
	return m, nil
}

// rebuild recomputes the offline state from scratch over ref (the fallback
// path, and the initial build): layouts are re-fit to ref, so accumulated
// drift resets to zero. Callers count the rebuild against the right
// counter. Caller holds no lock or the lock.
func (m *Maintained) rebuild(ref *Table, seq uint64) error {
	target, err := m.runQuery(ref)
	if err != nil {
		return err
	}
	gen, err := view.NewGenerator(ref, target, m.spaceCfg)
	if err != nil {
		return err
	}
	matrix, err := feature.ComputeWorkers(gen, m.registry, m.opts.Workers)
	if err != nil {
		return err
	}
	m.ref, m.target, m.gen, m.matrix, m.seq = ref, target, gen, matrix, seq
	return nil
}

func (m *Maintained) runQuery(ref *Table) (*Table, error) {
	target, err := Query(ref, m.query)
	if err != nil {
		return nil, fmt.Errorf("viewseeker: exploration query: %w", err)
	}
	if target.NumRows() == 0 {
		return nil, fmt.Errorf("viewseeker: exploration query selected no rows")
	}
	target.Name = ref.Name + "_dq"
	return target, nil
}

// Advance folds rows appended since the last Advance (or Maintain) into
// the maintained state, returning whether anything changed. The fast path
// extends the cached bin indexes, statistics and feature matrix with only
// the appended suffix — bit-identical to a recomputation because layouts
// stay pinned and the floating-point accumulation order is preserved. It
// applies when re-running the exploration query only appended result rows
// (verified with Table.IsPrefixOf); a query whose result was reordered or
// shrunk by the new data falls back to a full rebuild. Rebuilds also cover
// appends that drift a measure's accumulation shift (an all-NULL column
// gaining its first value).
//
// Distribution drift forces the other kind of rebuild: when the
// cumulative fraction of appended values escaping any pinned bin layout
// reaches the configured threshold, Advance discards the extension and
// rebuilds from scratch, re-fitting every layout to the current data
// (Stats.DriftRebuilds). The rebuilt state is exactly what Maintain over
// the current table would produce; drift accumulation restarts at zero.
func (m *Maintained) Advance() (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	newRef, newSeq := m.lt.Snapshot()
	if newSeq == m.seq {
		return false, nil
	}
	// The live table's versions form a copy-on-append chain, so newRef is a
	// bit-exact prefix extension of m.ref by construction — only the target
	// needs extension checking.
	if newTarget, ok := m.extendTarget(newRef); ok {
		if ng, err := m.gen.ApplyAppend(newRef, newTarget); err == nil {
			if m.driftThreshold >= 0 && ng.MaxDriftRate() >= m.driftThreshold {
				// The pinned layouts no longer represent the data: re-fit.
				if err := m.rebuild(newRef, newSeq); err != nil {
					return false, err
				}
				m.driftRebuilds++
				return true, nil
			}
			// The delta-extended generator answers every scan from its
			// seeded caches; Compute then only reassembles per-view vectors.
			if matrix, err := feature.ComputeWorkers(ng, m.registry, m.opts.Workers); err == nil {
				m.ref, m.target, m.gen, m.matrix, m.seq = newRef, newTarget, ng, matrix, newSeq
				m.extended++
				return true, nil
			}
		}
	}
	if err := m.rebuild(newRef, newSeq); err != nil {
		return false, err
	}
	m.rebuilt++
	return true, nil
}

// extendTarget produces the exploration query's result over newRef as an
// extension of the old result, or ok=false when the delta path does not
// apply. A row-local query runs over only the appended suffix — O(appended)
// instead of O(table); anything else reruns in full and verifies that the
// new data only appended result rows (Table.IsPrefixOf).
func (m *Maintained) extendTarget(newRef *Table) (*Table, bool) {
	if m.suffixable {
		from, to := m.ref.NumRows(), newRef.NumRows()
		suffix := newRef.Subset(newRef.Name, seqRange(from, to))
		matches, err := Query(suffix, m.query)
		if err != nil {
			return nil, false
		}
		rows := make([][]Value, matches.NumRows())
		for i := range rows {
			rows[i] = matches.Row(i)
		}
		newTarget, err := m.target.WithAppended(rows)
		if err != nil {
			return nil, false
		}
		return newTarget, true
	}
	newTarget, err := m.runQuery(newRef)
	if err != nil || !m.target.IsPrefixOf(newTarget) {
		return nil, false
	}
	return newTarget, true
}

func seqRange(from, to int) []int {
	out := make([]int, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, i)
	}
	return out
}

// NewSession mints an interactive session from the maintained state —
// the offline phase is already paid, so this is the warm path regardless
// of any Options.Cache. The session keeps the version it was built on:
// later Advances never mutate it.
func (m *Maintained) NewSession() (*Seeker, error) {
	return m.newSession(nil)
}

// NewSessionWith is NewSession with per-session interaction knobs — K, M,
// Strategy, Seed, Workers, RefineHook — overlaid onto the maintained
// configuration, so one maintained offline state can serve sessions with
// different recommendation sizes or query strategies. Knobs that shape
// the offline state itself (aggregates, bin counts, features, alpha) come
// from the Maintained and are ignored here.
func (m *Maintained) NewSessionWith(opts Options) (*Seeker, error) {
	return m.newSession(&opts)
}

func (m *Maintained) newSession(overlay *Options) (*Seeker, error) {
	m.mu.Lock()
	ref, target, gen := m.ref, m.target, m.gen
	matrix, registry := m.matrix, m.registry
	opts, spaceCfg := m.opts, m.spaceCfg
	m.mu.Unlock()
	if overlay != nil {
		opts.K, opts.M = overlay.K, overlay.M
		opts.Strategy, opts.Seed = overlay.Strategy, overlay.Seed
		opts.Workers, opts.RefineHook = overlay.Workers, overlay.RefineHook
	}
	// Sessions share the maintained matrix read-only (exact rows are never
	// refined), but Rebuild makes the rows the matrix's backing store, so
	// hand each session its own row headers.
	rows := make([][]float64, len(matrix.Rows))
	copy(rows, matrix.Rows)
	exact := make([]bool, len(matrix.Exact))
	copy(exact, matrix.Exact)
	sm, err := feature.Rebuild(gen, registry, matrix.Specs, rows, exact)
	if err != nil {
		return nil, err
	}
	s, err := finishSession(ref, target, opts, registry, spaceCfg, sm, gen, true, false)
	if err != nil {
		return nil, err
	}
	// The session shares the maintained target/generator/row contents
	// read-only: account it shallowly and bar the server from evicting it
	// (its offline state advances with the table, so journal replay could
	// not rebuild it bit-identically).
	s.sharedOffline = true
	return s, nil
}

// Seq returns the live-table sequence the maintained state is current to.
func (m *Maintained) Seq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq
}

// MaintainedStats breaks down how Advances were served.
type MaintainedStats struct {
	// Extended counts Advances that took the incremental path.
	Extended int
	// Rebuilt counts fallback rebuilds (non-extendable query results,
	// shift drift, extension failures). The initial Maintain build is not
	// counted.
	Rebuilt int
	// DriftRebuilds counts rebuilds triggered by the layout drift
	// threshold — appended data escaping the pinned bin layouts.
	DriftRebuilds int
}

// Stats reports how many Advances took the incremental path versus fell
// back to a full rebuild, and how many rebuilds were drift-triggered.
func (m *Maintained) Stats() MaintainedStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MaintainedStats{Extended: m.extended, Rebuilt: m.rebuilt, DriftRebuilds: m.driftRebuilds}
}

// DriftRate returns the highest cumulative out-of-range rate across the
// pinned bin layouts — how much of the appended data the maintained
// histograms are currently dropping (0 right after a build or re-fit).
func (m *Maintained) DriftRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen.MaxDriftRate()
}

// Matrix returns the current feature matrix (shared, read-only).
func (m *Maintained) Matrix() *feature.Matrix {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.matrix
}
