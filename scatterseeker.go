package viewseeker

import (
	"fmt"

	"viewseeker/internal/core"
	"viewseeker/internal/feature"
	"viewseeker/internal/scatter"
)

// ScatterSpec identifies one scatter-plot view: a pair of measures.
type ScatterSpec = scatter.Spec

// ScatterView is one scatter view with its current score.
type ScatterView struct {
	Index int
	Spec  ScatterSpec
	Score float64
}

// ScatterSeeker is an interactive session over scatter-plot views — the
// visualization-type extension from the paper's future-work list. It uses
// the same active-learning core as the histogram Seeker, over
// correlation-shift utility features.
type ScatterSeeker struct {
	ref    *Table
	target *Table
	specs  []scatter.Spec
	matrix *feature.Matrix
	inner  *core.Seeker
}

// NewScatter builds a scatter session: query carves DQ out of the table;
// every unordered pair of measure columns becomes a candidate view. Only
// Options.K, M, Strategy and Seed apply (scatter summaries are single-pass
// and always exact, so there is no α tier).
func NewScatter(table *Table, query string, opts Options) (*ScatterSeeker, error) {
	if table == nil {
		return nil, fmt.Errorf("viewseeker: nil table")
	}
	target, err := Query(table, query)
	if err != nil {
		return nil, fmt.Errorf("viewseeker: exploration query: %w", err)
	}
	if target.NumRows() == 0 {
		return nil, fmt.Errorf("viewseeker: exploration query selected no rows")
	}
	target.Name = table.Name + "_dq"
	matrix, specs, err := scatter.BuildMatrix(table, target)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewSeeker(matrix, core.Config{K: opts.K, M: opts.M, ColdStartSeed: opts.Seed}, false)
	if err != nil {
		return nil, err
	}
	return &ScatterSeeker{ref: table, target: target, specs: specs, matrix: matrix, inner: inner}, nil
}

// NumViews returns the scatter view-space size.
func (s *ScatterSeeker) NumViews() int { return s.matrix.Len() }

// FeatureNames returns the scatter utility feature names.
func (s *ScatterSeeker) FeatureNames() []string { return scatter.FeatureNames }

// Next returns the next scatter view to label.
func (s *ScatterSeeker) Next() (ScatterView, error) {
	idxs, err := s.inner.NextViews()
	if err != nil {
		return ScatterView{}, err
	}
	if len(idxs) == 0 {
		return ScatterView{}, fmt.Errorf("viewseeker: every scatter view is labelled")
	}
	return s.viewAt(idxs[0]), nil
}

func (s *ScatterSeeker) viewAt(i int) ScatterView {
	return ScatterView{Index: i, Spec: s.specs[i], Score: s.inner.Predict(i)}
}

// Feedback records a 0–1 interest label.
func (s *ScatterSeeker) Feedback(index int, label float64) error {
	return s.inner.Feedback(index, label)
}

// NumLabels returns how many labels have been given.
func (s *ScatterSeeker) NumLabels() int { return s.inner.NumLabels() }

// TopK returns the current recommendation, best first.
func (s *ScatterSeeker) TopK() []ScatterView {
	idxs := s.inner.TopK()
	out := make([]ScatterView, len(idxs))
	for i, idx := range idxs {
		out[i] = s.viewAt(idx)
	}
	return out
}

// Pair executes one scatter view's summaries.
func (s *ScatterSeeker) Pair(index int) (*scatter.Pair, error) {
	if index < 0 || index >= s.NumViews() {
		return nil, fmt.Errorf("viewseeker: scatter view %d out of range [0, %d)", index, s.NumViews())
	}
	return scatter.Execute(s.ref, s.target, s.specs[index])
}

// Render draws one scatter view as side-by-side target/reference ASCII
// density grids.
func (s *ScatterSeeker) Render(index int) (string, error) {
	p, err := s.Pair(index)
	if err != nil {
		return "", err
	}
	return p.Render(s.ref, s.target, 0, 0)
}

// Weights returns the learned utility composition over the scatter
// features.
func (s *ScatterSeeker) Weights() (map[string]float64, float64) {
	w, b := s.inner.Weights()
	if w == nil {
		return nil, 0
	}
	out := make(map[string]float64, len(w))
	for i, name := range scatter.FeatureNames {
		out[name] = w[i]
	}
	return out, b
}
