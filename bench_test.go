// Benchmarks regenerating every table and figure of the paper's evaluation
// at bench scale, plus ablations of the design choices DESIGN.md calls
// out. Each figure bench reports the domain metric the paper plots
// (labels-to-convergence, precision) via b.ReportMetric alongside wall
// time; cmd/experiments reproduces the same numbers at paper scale.
package viewseeker_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"viewseeker"
	"viewseeker/internal/active"
	"viewseeker/internal/core"
	"viewseeker/internal/dataset"
	"viewseeker/internal/exp"
	"viewseeker/internal/feature"
	"viewseeker/internal/ml"
	"viewseeker/internal/sim"
	"viewseeker/internal/sql"
	"viewseeker/internal/view"
)

// Bench-scale testbeds, built once and shared across benchmarks.
var (
	diabOnce sync.Once
	diabTB   *exp.Testbed
	synOnce  sync.Once
	synTB    *exp.Testbed
)

func benchDIAB(b *testing.B) *exp.Testbed {
	b.Helper()
	diabOnce.Do(func() {
		tb, err := exp.NewDIABTestbed(20_000, 1)
		if err != nil {
			panic(err)
		}
		diabTB = tb
	})
	return diabTB
}

func benchSYN(b *testing.B) *exp.Testbed {
	b.Helper()
	synOnce.Do(func() {
		tb, err := exp.NewSYNTestbed(50_000, 1)
		if err != nil {
			panic(err)
		}
		synTB = tb
	})
	return synTB
}

// runSession drives one simulated session and returns labels used.
func runSession(b *testing.B, tb *exp.Testbed, fn sim.IdealFunction, k int,
	criterion sim.StopCriterion, cfg core.Config, withRefinement bool,
	matrix *feature.Matrix) float64 {
	b.Helper()
	user, err := sim.NewUser(fn, tb.Exact)
	if err != nil {
		b.Fatal(err)
	}
	if matrix == nil {
		matrix = tb.Exact
	}
	cfg.K = k
	seeker, err := core.NewSeeker(matrix, cfg, withRefinement)
	if err != nil {
		b.Fatal(err)
	}
	res, err := (&sim.Runner{Seeker: seeker, User: user, K: k, MaxLabels: 100, Criterion: criterion}).Run()
	if err != nil {
		b.Fatal(err)
	}
	return float64(res.LabelsUsed)
}

// BenchmarkTable1Testbed measures the offline phase that Table 1
// parameterises: generating DIAB and computing the exact utility-feature
// matrix for all 280 views.
func BenchmarkTable1Testbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := exp.NewDIABTestbed(10_000, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if tb.Exact.Len() != 280 {
			b.Fatalf("view space = %d", tb.Exact.Len())
		}
	}
}

// BenchmarkTable2IdealFunctions measures evaluating all 11 simulated ideal
// utility functions over the full view space.
func BenchmarkTable2IdealFunctions(b *testing.B) {
	tb := benchDIAB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, fn := range sim.IdealFunctions() {
			if _, err := fn.Scores(tb.Exact); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig3DIABLabels regenerates one Figure 3 point: a DIAB session
// to 100% top-10 precision, averaged over the single-component u* group.
// The "labels" metric is the figure's y-axis.
func BenchmarkFig3DIABLabels(b *testing.B) {
	tb := benchDIAB(b)
	fns := sim.IdealFunctionsWithComponents(1)
	b.ResetTimer()
	total := 0.0
	for i := 0; i < b.N; i++ {
		for _, fn := range fns {
			total += runSession(b, tb, fn, 10, sim.StopAtFullPrecision, core.Config{}, false, nil)
		}
	}
	b.ReportMetric(total/float64(b.N*len(fns)), "labels")
}

// BenchmarkFig4SYNLabels regenerates one Figure 4 point on SYN.
func BenchmarkFig4SYNLabels(b *testing.B) {
	tb := benchSYN(b)
	fns := sim.IdealFunctionsWithComponents(1)
	b.ResetTimer()
	total := 0.0
	for i := 0; i < b.N; i++ {
		for _, fn := range fns {
			total += runSession(b, tb, fn, 10, sim.StopAtFullPrecision, core.Config{}, false, nil)
		}
	}
	b.ReportMetric(total/float64(b.N*len(fns)), "labels")
}

// BenchmarkFig5Baselines regenerates Figure 5: the single-feature baseline
// comparison against u* #11. The reported metrics are the figure's bars.
func BenchmarkFig5Baselines(b *testing.B) {
	tb := benchDIAB(b)
	fn := sim.IdealFunctions()[10]
	b.ResetTimer()
	var vs, best float64
	for i := 0; i < b.N; i++ {
		results, err := exp.BaselineComparison(tb, fn, 10)
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, r := range results {
			if r.Name == "ViewSeeker" {
				vs = r.Precision
			} else if r.Precision > best {
				best = r.Precision
			}
		}
	}
	b.ReportMetric(vs, "viewseeker-precision")
	b.ReportMetric(best, "best-baseline-precision")
}

// BenchmarkFig6Optimization regenerates one Figure 6 point: labels to
// UD = 0 with the α-sampling + incremental-refinement optimisation on
// versus off.
func BenchmarkFig6Optimization(b *testing.B) {
	tb := benchDIAB(b)
	fn := sim.IdealFunctionsWithComponents(1)[1] // 1.0*EMD
	b.Run("unoptimized", func(b *testing.B) {
		total := 0.0
		for i := 0; i < b.N; i++ {
			total += runSession(b, tb, fn, 10, sim.StopAtZeroUD, core.Config{}, false, nil)
		}
		b.ReportMetric(total/float64(b.N), "labels")
	})
	b.Run("optimized", func(b *testing.B) {
		total := 0.0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			gen, err := tb.NewGeneratorLike()
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			partial, err := feature.ComputePartial(gen, tb.Registry, 0.1)
			if err != nil {
				b.Fatal(err)
			}
			total += runSession(b, tb, fn, 10, sim.StopAtZeroUD,
				core.Config{RefineBudget: time.Second}, true, partial)
		}
		b.ReportMetric(total/float64(b.N), "labels")
	})
}

// BenchmarkFig7Runtime regenerates one Figure 7 point: total system
// runtime (offline pass + session compute) to UD = 0, optimisation on
// versus off. Wall time per op is the figure's y-axis.
func BenchmarkFig7Runtime(b *testing.B) {
	tb := benchDIAB(b)
	fn := sim.IdealFunctionsWithComponents(1)[1]
	b.Run("unoptimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gen, err := tb.NewGeneratorLike()
			if err != nil {
				b.Fatal(err)
			}
			exact, err := feature.Compute(gen, tb.Registry)
			if err != nil {
				b.Fatal(err)
			}
			runSession(b, tb, fn, 10, sim.StopAtZeroUD, core.Config{}, false, exact)
		}
	})
	b.Run("optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gen, err := tb.NewGeneratorLike()
			if err != nil {
				b.Fatal(err)
			}
			partial, err := feature.ComputePartial(gen, tb.Registry, 0.1)
			if err != nil {
				b.Fatal(err)
			}
			runSession(b, tb, fn, 10, sim.StopAtZeroUD,
				core.Config{RefineBudget: time.Second}, true, partial)
		}
	})
}

// BenchmarkAblationStrategies compares the main-phase query strategies on
// labels-to-precision: the uncertainty sampler the paper picked, random
// sampling, and query-by-committee.
func BenchmarkAblationStrategies(b *testing.B) {
	tb := benchDIAB(b)
	fn := sim.IdealFunctions()[3] // 0.5*EMD + 0.5*KL
	strategies := map[string]func() active.Strategy{
		"uncertainty": func() active.Strategy { return &active.Uncertainty{} },
		"random":      func() active.Strategy { return &active.Random{Seed: 1} },
		"committee":   func() active.Strategy { return &active.Committee{Seed: 1} },
		"density":     func() active.Strategy { return &active.DensityWeighted{} },
	}
	for name, mk := range strategies {
		b.Run(name, func(b *testing.B) {
			total := 0.0
			for i := 0; i < b.N; i++ {
				total += runSession(b, tb, fn, 10, sim.StopAtFullPrecision,
					core.Config{Strategy: mk()}, false, nil)
			}
			b.ReportMetric(total/float64(b.N), "labels")
		})
	}
}

// BenchmarkAblationRidge sweeps the utility estimator's ridge penalty.
func BenchmarkAblationRidge(b *testing.B) {
	tb := benchDIAB(b)
	fn := sim.IdealFunctions()[3]
	for _, lambda := range []float64{1e-9, 1e-6, 1e-3, 1e-1} {
		b.Run(formatLambda(lambda), func(b *testing.B) {
			total := 0.0
			for i := 0; i < b.N; i++ {
				total += runSession(b, tb, fn, 10, sim.StopAtFullPrecision,
					core.Config{Ridge: lambda}, false, nil)
			}
			b.ReportMetric(total/float64(b.N), "labels")
		})
	}
}

func formatLambda(l float64) string {
	switch l {
	case 1e-9:
		return "lambda=1e-9"
	case 1e-6:
		return "lambda=1e-6"
	case 1e-3:
		return "lambda=1e-3"
	default:
		return "lambda=1e-1"
	}
}

// BenchmarkAblationAlpha sweeps the optimisation's partial-data ratio.
func BenchmarkAblationAlpha(b *testing.B) {
	tb := benchDIAB(b)
	fn := sim.IdealFunctionsWithComponents(1)[1]
	for _, alpha := range []float64{0.05, 0.1, 0.25, 0.5} {
		name := map[float64]string{0.05: "alpha=5%", 0.1: "alpha=10%", 0.25: "alpha=25%", 0.5: "alpha=50%"}[alpha]
		b.Run(name, func(b *testing.B) {
			total := 0.0
			for i := 0; i < b.N; i++ {
				gen, err := tb.NewGeneratorLike()
				if err != nil {
					b.Fatal(err)
				}
				partial, err := feature.ComputePartial(gen, tb.Registry, alpha)
				if err != nil {
					b.Fatal(err)
				}
				total += runSession(b, tb, fn, 10, sim.StopAtZeroUD,
					core.Config{RefineBudget: time.Second}, true, partial)
			}
			b.ReportMetric(total/float64(b.N), "labels")
		})
	}
}

// BenchmarkAblationColdStart compares the per-feature cold-start seeding
// against a session whose cold start is replaced by pure random sampling
// (by configuring the main strategy as random AND labelling through it
// from the first iteration).
func BenchmarkAblationColdStart(b *testing.B) {
	tb := benchDIAB(b)
	fn := sim.IdealFunctions()[3]
	b.Run("feature-seeded", func(b *testing.B) {
		total := 0.0
		for i := 0; i < b.N; i++ {
			total += runSession(b, tb, fn, 10, sim.StopAtFullPrecision, core.Config{}, false, nil)
		}
		b.ReportMetric(total/float64(b.N), "labels")
	})
	b.Run("random-seeded", func(b *testing.B) {
		total := 0.0
		for i := 0; i < b.N; i++ {
			user, err := sim.NewUser(fn, tb.Exact)
			if err != nil {
				b.Fatal(err)
			}
			seeker, err := core.NewSeeker(tb.Exact, core.Config{K: 10}, false)
			if err != nil {
				b.Fatal(err)
			}
			// Random warm-up labels replace the cold-start walk, then the
			// normal loop takes over.
			rnd := &active.Random{Seed: int64(i + 1)}
			labels := 0
			for warm := 0; warm < 8; warm++ {
				picks, err := rnd.Select(tb.Exact.Rows, labeledOf(seeker), 1)
				if err != nil {
					b.Fatal(err)
				}
				if len(picks) == 0 {
					break
				}
				if err := seeker.Feedback(picks[0], user.Label(picks[0])); err != nil {
					b.Fatal(err)
				}
				labels++
			}
			res, err := (&sim.Runner{Seeker: seeker, User: user, K: 10, MaxLabels: 92,
				Criterion: sim.StopAtFullPrecision}).Run()
			if err != nil {
				b.Fatal(err)
			}
			total += float64(labels + res.LabelsUsed)
		}
		b.ReportMetric(total/float64(b.N), "labels")
	})
}

func labeledOf(s *core.Seeker) map[int]float64 {
	idx, labels := s.Labels()
	out := make(map[int]float64, len(idx))
	for i, v := range idx {
		out[v] = labels[i]
	}
	return out
}

// BenchmarkAblationClassifierVsRegressor compares ViewSeeker's
// regression-based utility estimator against a classifier-only
// recommender in the style of the feedback-driven exploration baseline
// the paper's related work discusses ([3]): binary feedback trains a
// logistic classifier and views are ranked by p(interesting). The metric
// is the top-10 precision reached after a fixed 15-label budget.
func BenchmarkAblationClassifierVsRegressor(b *testing.B) {
	tb := benchDIAB(b)
	fn := sim.IdealFunctions()[3]
	const budget = 15
	b.Run("regressor", func(b *testing.B) {
		total := 0.0
		for i := 0; i < b.N; i++ {
			user, err := sim.NewUser(fn, tb.Exact)
			if err != nil {
				b.Fatal(err)
			}
			seeker, err := core.NewSeeker(tb.Exact, core.Config{K: 10}, false)
			if err != nil {
				b.Fatal(err)
			}
			res, err := (&sim.Runner{Seeker: seeker, User: user, K: 10,
				MaxLabels: budget, Criterion: sim.StopAtFullPrecision}).Run()
			if err != nil {
				b.Fatal(err)
			}
			total += res.FinalPrecision
		}
		b.ReportMetric(total/float64(b.N), "precision")
	})
	b.Run("classifier-only", func(b *testing.B) {
		total := 0.0
		for i := 0; i < b.N; i++ {
			user, err := sim.NewUser(fn, tb.Exact)
			if err != nil {
				b.Fatal(err)
			}
			precision, err := classifierOnlySession(tb, user, 10, budget, int64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			total += precision
		}
		b.ReportMetric(total/float64(b.N), "precision")
	})
}

// classifierOnlySession runs the [3]-style baseline: uncertainty-sampled
// binary labels train a logistic classifier; the recommendation is the
// top-k by predicted class probability.
func classifierOnlySession(tb *exp.Testbed, user *sim.User, k, budget int, seed int64) (float64, error) {
	labeled := map[int]float64{}
	strategy := &active.Uncertainty{}
	cold := &active.ColdStart{Seed: seed}
	model := ml.NewLogisticRegression()
	havePos, haveNeg := false, false
	for len(labeled) < budget {
		var picks []int
		var err error
		if !(havePos && haveNeg) {
			picks, err = cold.Select(tb.Exact.Rows, labeled, 1)
		} else {
			picks, err = strategy.Select(tb.Exact.Rows, labeled, 1)
		}
		if err != nil {
			return 0, err
		}
		if len(picks) == 0 {
			break
		}
		v := picks[0]
		labeled[v] = user.Label(v)
		if labeled[v] >= 0.5 {
			havePos = true
		} else {
			haveNeg = true
		}
		var x [][]float64
		var y []float64
		for idx, l := range labeled {
			x = append(x, tb.Exact.Rows[idx])
			if l >= 0.5 {
				y = append(y, 1)
			} else {
				y = append(y, 0)
			}
		}
		if err := model.Fit(x, y); err != nil {
			return 0, err
		}
	}
	scores := make([]float64, tb.Exact.Len())
	for i, row := range tb.Exact.Rows {
		scores[i] = model.Prob(row)
	}
	pred := sim.TopKByScore(scores, k)
	return sim.Precision(pred, user.Scores(), k)
}

// BenchmarkAblationBinning compares equal-width against equal-depth
// binning of the SYN numeric dimensions on labels-to-precision.
func BenchmarkAblationBinning(b *testing.B) {
	fn := sim.IdealFunctions()[1] // 1.0*EMD
	for _, equalDepth := range []bool{false, true} {
		name := "equal-width"
		if equalDepth {
			name = "equal-depth"
		}
		b.Run(name, func(b *testing.B) {
			b.StopTimer()
			ref := dataset.GenerateSYN(dataset.SYNConfig{Rows: 30_000, Seed: 1})
			cat := sqlCatalogFor(b, ref)
			tgt, err := cat.Query(dataset.SYNQuery)
			if err != nil {
				b.Fatal(err)
			}
			tgt.Name = "dq"
			gen, err := view.NewGenerator(ref, tgt, view.SpaceConfig{BinCounts: []int{3, 4}, EqualDepth: equalDepth})
			if err != nil {
				b.Fatal(err)
			}
			reg := feature.StandardRegistry()
			matrix, err := feature.Compute(gen, reg)
			if err != nil {
				b.Fatal(err)
			}
			user, err := sim.NewUser(fn, matrix)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			total := 0.0
			for i := 0; i < b.N; i++ {
				seeker, err := core.NewSeeker(matrix, core.Config{K: 10}, false)
				if err != nil {
					b.Fatal(err)
				}
				res, err := (&sim.Runner{Seeker: seeker, User: user, K: 10,
					MaxLabels: 100, Criterion: sim.StopAtFullPrecision}).Run()
				if err != nil {
					b.Fatal(err)
				}
				total += float64(res.LabelsUsed)
			}
			b.ReportMetric(total/float64(b.N), "labels")
		})
	}
}

func sqlCatalogFor(b *testing.B, tables ...*dataset.Table) *sql.Catalog {
	b.Helper()
	c := sql.NewCatalog()
	for _, t := range tables {
		c.Register(t)
	}
	return c
}

// BenchmarkAblationLabelNoise measures robustness to imperfect users:
// labels perturbed by Gaussian noise of increasing sigma, metric = best
// top-10 precision reached within a 25-label budget.
func BenchmarkAblationLabelNoise(b *testing.B) {
	tb := benchDIAB(b)
	fn := sim.IdealFunctions()[3]
	for _, sigma := range []float64{0, 0.05, 0.1, 0.2} {
		b.Run(fmt.Sprintf("sigma=%.2f", sigma), func(b *testing.B) {
			total := 0.0
			for i := 0; i < b.N; i++ {
				user, err := sim.NewUser(fn, tb.Exact)
				if err != nil {
					b.Fatal(err)
				}
				noisy, err := sim.NewNoisyUser(user, sigma, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				seeker, err := core.NewSeeker(tb.Exact, core.Config{K: 10}, false)
				if err != nil {
					b.Fatal(err)
				}
				res, err := (&sim.Runner{Seeker: seeker, User: noisy, K: 10,
					MaxLabels: 25, Criterion: sim.StopAtFullPrecision}).Run()
				if err != nil {
					b.Fatal(err)
				}
				total += res.FinalPrecision
			}
			b.ReportMetric(total/float64(b.N), "precision")
		})
	}
}

// BenchmarkSessionWarmStart measures the offline-result cache on the
// synthetic dataset: session creation cold (offline feature pass computed)
// versus warm (served from the shared cache, as the server does it: the
// reference table's content hash precomputed once at boot). A warm start
// skips the exploration query, the layout scans and the whole feature
// pass — the cold/warm wall-time ratio is the cache's speedup for a
// second user on the same (table, query).
func BenchmarkSessionWarmStart(b *testing.B) {
	table := dataset.GenerateSYN(dataset.SYNConfig{Rows: 50_000, Seed: 1})
	opts := viewseeker.Options{K: 10, BinCounts: []int{3, 4}}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := viewseeker.New(table, dataset.SYNQuery, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		warmOpts := opts
		warmOpts.Cache = viewseeker.NewCache(4)
		warmOpts.RefHash = viewseeker.HashTable(table)
		if _, err := viewseeker.New(table, dataset.SYNQuery, warmOpts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := viewseeker.New(table, dataset.SYNQuery, warmOpts)
			if err != nil {
				b.Fatal(err)
			}
			if !s.CacheHit() {
				b.Fatal("warm session missed the cache")
			}
		}
	})
}

// BenchmarkOfflineParallel measures the parallelised offline phase on the
// SYN testbed: the exact feature matrix for the whole view space computed
// with 1, 2, 4, and 8 workers. A fresh generator per iteration keeps the
// scan caches cold so each op pays the full offline cost. Before timing,
// it asserts the 8-worker matrix is bit-identical to the sequential one —
// parallelism must never change the numbers.
func BenchmarkOfflineParallel(b *testing.B) {
	tb := benchSYN(b)
	newGen := func() *view.Generator {
		gen, err := tb.NewGeneratorLike()
		if err != nil {
			b.Fatal(err)
		}
		return gen
	}
	seq, err := feature.ComputeWorkers(newGen(), tb.Registry, 1)
	if err != nil {
		b.Fatal(err)
	}
	par, err := feature.ComputeWorkers(newGen(), tb.Registry, 8)
	if err != nil {
		b.Fatal(err)
	}
	if seq.Len() != par.Len() {
		b.Fatalf("matrix sizes differ: %d vs %d", seq.Len(), par.Len())
	}
	for i := range seq.Rows {
		for j := range seq.Rows[i] {
			if seq.Rows[i][j] != par.Rows[i][j] {
				b.Fatalf("row %d feature %d: workers=1 %v != workers=8 %v",
					i, j, seq.Rows[i][j], par.Rows[i][j])
			}
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				gen := newGen()
				b.StartTimer()
				if _, err := feature.ComputeWorkers(gen, tb.Registry, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
