package viewseeker

import (
	"math"
	"path/filepath"
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/feature"
	"viewseeker/internal/view"
)

// liveSYN returns a SYN table split into a base and an append batch of
// boxed rows, so tests can grow a live table with data the exploration
// query selects from.
func liveSYN(t *testing.T, rows, appendRows int) (*Table, [][]Value) {
	t.Helper()
	full := dataset.GenerateSYN(dataset.SYNConfig{Rows: rows + appendRows, Seed: 7})
	base := full.Subset(full.Name, seqRows(0, rows))
	if err := dataset.AssignRoles(base, full.Schema.Dimensions(), full.Schema.Measures()); err != nil {
		t.Fatal(err)
	}
	batch := make([][]Value, appendRows)
	for i := range batch {
		batch[i] = full.Row(rows + i)
	}
	return base, batch
}

func seqRows(from, to int) []int {
	out := make([]int, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, i)
	}
	return out
}

func TestMaintainedAdvanceMatchesRebuild(t *testing.T) {
	base, batch := liveSYN(t, 3000, 300)
	lt, _, err := OpenLiveTable(filepath.Join(t.TempDir(), "syn.wal"), base, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()

	opts := Options{K: 5, BinCounts: []int{3, 4}}
	m, err := Maintain(lt, dataset.SYNQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lt.Append(batch); err != nil {
		t.Fatal(err)
	}
	changed, err := m.Advance()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("Advance saw no change after an append")
	}
	if ext, reb := m.Stats(); ext != 1 || reb != 0 {
		t.Fatalf("stats: extended %d rebuilt %d, want the incremental path", ext, reb)
	}

	// Oracle: a full recompute over the appended tables with the base's
	// pinned layouts (delta maintenance pins layouts by design — a fresh
	// Maintain would re-fit bin boundaries to the new data and legitimately
	// differ). A cold generator's ApplyAppend carries exactly the pinned
	// layouts and empty caches, so Compute over it is a from-scratch pass.
	newRef := lt.Current()
	baseTarget, err := Query(base, dataset.SYNQuery)
	if err != nil {
		t.Fatal(err)
	}
	baseTarget.Name = base.Name + "_dq"
	newTarget, err := Query(newRef, dataset.SYNQuery)
	if err != nil {
		t.Fatal(err)
	}
	newTarget.Name = newRef.Name + "_dq"
	spaceCfg := view.SpaceConfig{BinCounts: opts.BinCounts}.Normalized()
	cold, err := view.NewGenerator(base, baseTarget, spaceCfg)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := cold.ApplyAppend(newRef, newTarget)
	if err != nil {
		t.Fatal(err)
	}
	want, err := feature.Compute(scratch, feature.StandardRegistry())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Matrix()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("matrix rows %d vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if math.Float64bits(got.Rows[i][j]) != math.Float64bits(want.Rows[i][j]) {
				t.Fatalf("matrix[%d][%d] = %v, rebuild %v — delta maintenance is not bit-identical",
					i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}

	// Idempotence: no new appends, no work.
	if changed, err := m.Advance(); err != nil || changed {
		t.Fatalf("no-op Advance: changed %v err %v", changed, err)
	}
}

func TestMaintainedSessionsAcrossAppends(t *testing.T) {
	base, batch := liveSYN(t, 2000, 200)
	lt, _, err := OpenLiveTable(filepath.Join(t.TempDir(), "syn.wal"), base, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	m, err := Maintain(lt, dataset.SYNQuery, Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	oldRows := s1.Reference().NumRows()

	if _, err := lt.Append(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Advance(); err != nil {
		t.Fatal(err)
	}
	s2, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// s1 keeps the version it was built on; s2 sees the appended rows.
	if s1.Reference().NumRows() != oldRows {
		t.Fatal("existing session's reference changed under it")
	}
	if got := s2.Reference().NumRows(); got != oldRows+len(batch) {
		t.Fatalf("new session sees %d rows, want %d", got, oldRows+len(batch))
	}
	for _, s := range []*Seeker{s1, s2} {
		v, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Feedback(v.Index, 1); err != nil {
			t.Fatal(err)
		}
		if len(s.TopK()) == 0 {
			t.Fatal("no recommendations")
		}
	}
}

func TestMaintainedForcesExact(t *testing.T) {
	base, _ := liveSYN(t, 1000, 0)
	lt, _, err := OpenLiveTable(filepath.Join(t.TempDir(), "syn.wal"), base, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	m, err := Maintain(lt, dataset.SYNQuery, Options{Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range m.Matrix().Exact {
		if !e {
			t.Fatalf("row %d is inexact: Maintain must force Alpha = 1", i)
		}
	}
}
