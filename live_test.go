package viewseeker

import (
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"viewseeker/internal/dataset"
	"viewseeker/internal/feature"
	"viewseeker/internal/view"
)

// liveSYN returns a SYN table split into a base and an append batch of
// boxed rows, so tests can grow a live table with data the exploration
// query selects from.
func liveSYN(t *testing.T, rows, appendRows int) (*Table, [][]Value) {
	t.Helper()
	full := dataset.GenerateSYN(dataset.SYNConfig{Rows: rows + appendRows, Seed: 7})
	base := full.Subset(full.Name, seqRows(0, rows))
	if err := dataset.AssignRoles(base, full.Schema.Dimensions(), full.Schema.Measures()); err != nil {
		t.Fatal(err)
	}
	batch := make([][]Value, appendRows)
	for i := range batch {
		batch[i] = full.Row(rows + i)
	}
	return base, batch
}

func seqRows(from, to int) []int {
	out := make([]int, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, i)
	}
	return out
}

func TestMaintainedAdvanceMatchesRebuild(t *testing.T) {
	base, batch := liveSYN(t, 3000, 300)
	lt, _, err := OpenLiveTable(filepath.Join(t.TempDir(), "syn.wal"), base, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()

	opts := Options{K: 5, BinCounts: []int{3, 4}}
	m, err := Maintain(lt, dataset.SYNQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lt.Append(batch); err != nil {
		t.Fatal(err)
	}
	changed, err := m.Advance()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("Advance saw no change after an append")
	}
	if st := m.Stats(); st.Extended != 1 || st.Rebuilt != 0 {
		t.Fatalf("stats: extended %d rebuilt %d, want the incremental path", st.Extended, st.Rebuilt)
	}

	// Oracle: a full recompute over the appended tables with the base's
	// pinned layouts (delta maintenance pins layouts by design — a fresh
	// Maintain would re-fit bin boundaries to the new data and legitimately
	// differ). A cold generator's ApplyAppend carries exactly the pinned
	// layouts and empty caches, so Compute over it is a from-scratch pass.
	newRef := lt.Current()
	baseTarget, err := Query(base, dataset.SYNQuery)
	if err != nil {
		t.Fatal(err)
	}
	baseTarget.Name = base.Name + "_dq"
	newTarget, err := Query(newRef, dataset.SYNQuery)
	if err != nil {
		t.Fatal(err)
	}
	newTarget.Name = newRef.Name + "_dq"
	spaceCfg := view.SpaceConfig{BinCounts: opts.BinCounts}.Normalized()
	cold, err := view.NewGenerator(base, baseTarget, spaceCfg)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := cold.ApplyAppend(newRef, newTarget)
	if err != nil {
		t.Fatal(err)
	}
	want, err := feature.Compute(scratch, feature.StandardRegistry())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Matrix()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("matrix rows %d vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if math.Float64bits(got.Rows[i][j]) != math.Float64bits(want.Rows[i][j]) {
				t.Fatalf("matrix[%d][%d] = %v, rebuild %v — delta maintenance is not bit-identical",
					i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}

	// Idempotence: no new appends, no work.
	if changed, err := m.Advance(); err != nil || changed {
		t.Fatalf("no-op Advance: changed %v err %v", changed, err)
	}
}

func TestMaintainedSessionsAcrossAppends(t *testing.T) {
	base, batch := liveSYN(t, 2000, 200)
	lt, _, err := OpenLiveTable(filepath.Join(t.TempDir(), "syn.wal"), base, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	m, err := Maintain(lt, dataset.SYNQuery, Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	oldRows := s1.Reference().NumRows()

	if _, err := lt.Append(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Advance(); err != nil {
		t.Fatal(err)
	}
	s2, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// s1 keeps the version it was built on; s2 sees the appended rows.
	if s1.Reference().NumRows() != oldRows {
		t.Fatal("existing session's reference changed under it")
	}
	if got := s2.Reference().NumRows(); got != oldRows+len(batch) {
		t.Fatalf("new session sees %d rows, want %d", got, oldRows+len(batch))
	}
	for _, s := range []*Seeker{s1, s2} {
		v, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Feedback(v.Index, 1); err != nil {
			t.Fatal(err)
		}
		if len(s.TopK()) == 0 {
			t.Fatal("no recommendations")
		}
	}
}

func TestMaintainedForcesExact(t *testing.T) {
	base, _ := liveSYN(t, 1000, 0)
	lt, _, err := OpenLiveTable(filepath.Join(t.TempDir(), "syn.wal"), base, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	m, err := Maintain(lt, dataset.SYNQuery, Options{Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range m.Matrix().Exact {
		if !e {
			t.Fatalf("row %d is inexact: Maintain must force Alpha = 1", i)
		}
	}
}

// shiftedBatch boxes n rows of full starting at from with every numeric
// cell offset by shift — a distribution-shifted append stream.
func shiftedBatch(full *Table, from, n int, shift float64) [][]Value {
	out := make([][]Value, n)
	for i := range out {
		row := full.Row(from + i)
		for j, v := range row {
			if f, ok := v.AsFloat(); ok {
				row[j] = dataset.Float(f + shift)
			}
		}
		out[i] = row
	}
	return out
}

// TestMaintainedDriftRebuild is the drift property test: a distribution-
// shifted append stream triggers exactly one drift rebuild per threshold
// crossing — the rebuild re-fits the layouts, so a second batch from the
// same shifted distribution extends instead of rebuilding, and only a
// further shift crosses again — and the rebuilt state is bit-identical to
// a fresh Maintain over the full table.
func TestMaintainedDriftRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2000 + rng.Intn(500)
		batchN := 100 + rng.Intn(100)
		shift := 2 + rng.Float64()*8
		full := dataset.GenerateSYN(dataset.SYNConfig{Rows: rows + 3*batchN, Seed: seed})
		base := full.Subset(full.Name, seqRows(0, rows))
		if err := dataset.AssignRoles(base, full.Schema.Dimensions(), full.Schema.Measures()); err != nil {
			t.Fatal(err)
		}
		lt, _, err := OpenLiveTable(filepath.Join(t.TempDir(), "syn.wal"), base, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer lt.Close()
		opts := Options{K: 3, BinCounts: []int{3, 4}}
		m, err := Maintain(lt, dataset.SYNQuery, opts)
		if err != nil {
			t.Fatal(err)
		}

		// Crossing 1: the whole batch escapes the pinned layouts.
		if _, err := lt.Append(shiftedBatch(full, rows, batchN, shift)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Advance(); err != nil {
			t.Fatal(err)
		}
		if st := m.Stats(); st.DriftRebuilds != 1 {
			t.Fatalf("after shifted batch: stats %+v, want exactly 1 drift rebuild", st)
		}
		if r := m.DriftRate(); r != 0 {
			t.Fatalf("drift rate %g after re-fit, want 0", r)
		}

		// Same shifted distribution again: the re-fit layouts cover it, so
		// the incremental path serves it — no second rebuild.
		if _, err := lt.Append(shiftedBatch(full, rows+batchN, batchN, shift)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Advance(); err != nil {
			t.Fatal(err)
		}
		if st := m.Stats(); st.DriftRebuilds != 1 || st.Extended != 1 {
			t.Fatalf("after in-distribution batch: stats %+v, want extension without rebuild", st)
		}

		// Crossing 2: shift past the re-fit layouts.
		if _, err := lt.Append(shiftedBatch(full, rows+2*batchN, batchN, 3*shift)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Advance(); err != nil {
			t.Fatal(err)
		}
		if st := m.Stats(); st.DriftRebuilds != 2 {
			t.Fatalf("after second shift: stats %+v, want a second drift rebuild", st)
		}

		// The drift rebuild is exactly a Maintain-from-scratch on the full
		// table: same specs, bit-identical feature matrix.
		fresh, err := Maintain(lt, dataset.SYNQuery, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, want := m.Matrix(), fresh.Matrix()
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("matrix rows %d vs fresh %d", len(got.Rows), len(want.Rows))
		}
		for i := range got.Rows {
			for j := range got.Rows[i] {
				if math.Float64bits(got.Rows[i][j]) != math.Float64bits(want.Rows[i][j]) {
					t.Fatalf("matrix[%d][%d] = %v, fresh Maintain %v — drift rebuild is not bit-identical",
						i, j, got.Rows[i][j], want.Rows[i][j])
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Error(err)
	}
}

// TestMaintainedProjectionSuffix: a WHERE-only projection (not SELECT *)
// is row-local, so Advance evaluates it over just the appended suffix —
// and the suffix-built target is bit-identical to re-running the query
// over the full current table.
func TestMaintainedProjectionSuffix(t *testing.T) {
	query := "SELECT d1, d2, d3, d4, d5, m1, m2, m3, m4, m5 FROM syn WHERE d1 < 0.0707 AND d2 < 0.0707"
	base, batch := liveSYN(t, 2000, 300)
	lt, _, err := OpenLiveTable(filepath.Join(t.TempDir(), "syn.wal"), base, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	m, err := Maintain(lt, query, Options{K: 3, BinCounts: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lt.Append(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Advance(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Extended != 1 || st.Rebuilt != 0 || st.DriftRebuilds != 0 {
		t.Fatalf("stats %+v: the projection did not take the suffix fast path", st)
	}

	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	got := s.Target()
	oracle, err := Query(lt.Current(), query)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != oracle.NumRows() || got.NumRows() <= 0 {
		t.Fatalf("suffix target has %d rows, full re-query %d", got.NumRows(), oracle.NumRows())
	}
	for r := 0; r < got.NumRows(); r++ {
		if !reflect.DeepEqual(got.Row(r), oracle.Row(r)) {
			t.Fatalf("row %d: suffix target %v != full re-query %v", r, got.Row(r), oracle.Row(r))
		}
	}
}
