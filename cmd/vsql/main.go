// Command vsql is a small SQL REPL over the library's query engine: it
// loads CSV files and/or generated datasets into a catalog and executes
// SELECT statements against them. It exists to exercise and demonstrate
// the SQL substrate the view recommender is built on.
//
// Usage:
//
//	vsql [-dataset diab -rows 10000] [name=path.csv ...]
//	> SELECT diag_group, COUNT(*) FROM diab GROUP BY diag_group;
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"viewseeker/internal/dataset"
	"viewseeker/internal/sql"
)

func main() {
	var (
		gen     = flag.String("dataset", "", "preload a generated dataset: diab, syn or nba")
		rows    = flag.Int("rows", 20000, "rows for the generated dataset")
		seed    = flag.Int64("seed", 1, "generator seed")
		command = flag.String("c", "", "execute this single statement and exit (scripting mode)")
	)
	flag.Parse()
	cat := sql.NewCatalog()
	switch *gen {
	case "":
	case "diab":
		cat.Register(dataset.GenerateDIAB(dataset.DIABConfig{Rows: *rows, Seed: *seed}))
	case "syn":
		cat.Register(dataset.GenerateSYN(dataset.SYNConfig{Rows: *rows, Seed: *seed}))
	case "nba":
		cat.Register(dataset.GenerateNBA(dataset.NBAConfig{Rows: *rows, Seed: *seed}))
	default:
		fmt.Fprintf(os.Stderr, "vsql: unknown dataset %q\n", *gen)
		os.Exit(1)
	}
	for _, arg := range flag.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "vsql: argument %q is not name=path.csv\n", arg)
			os.Exit(1)
		}
		t, err := dataset.ReadCSVFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vsql:", err)
			os.Exit(1)
		}
		t.Name = name
		cat.Register(t)
	}
	if len(cat.Names()) == 0 {
		fmt.Fprintln(os.Stderr, "vsql: no tables loaded (use -dataset or name=path.csv arguments)")
		os.Exit(1)
	}
	if *command != "" {
		res, err := cat.Query(*command)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vsql:", err)
			os.Exit(1)
		}
		if !printPlan(res) {
			printResult(res, 1000)
		}
		return
	}
	fmt.Printf("tables: %s\n", strings.Join(cat.Names(), ", "))
	fmt.Println(`enter SELECT statements, "\d <table>" for schema, "\q" to quit`)
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("vsql> ")
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "--"):
			continue
		case line == `\q` || line == "quit" || line == "exit":
			return
		case strings.HasPrefix(line, `\d`):
			describe(cat, strings.TrimSpace(strings.TrimPrefix(line, `\d`)))
			continue
		}
		res, err := cat.Query(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if !printPlan(res) {
			printResult(res, 40)
		}
	}
}

// printPlan prints an EXPLAIN result — a one-row, one-column "plan" table
// holding the physical plan's JSON document — raw, so the indented JSON
// survives instead of being squeezed into a padded table cell. Reports
// whether it handled the table.
func printPlan(t *dataset.Table) bool {
	if t.Name != "plan" || t.Schema.Len() != 1 || t.NumRows() != 1 {
		return false
	}
	if def := t.Schema.Columns[0]; def.Name != "plan" || def.Kind != dataset.KindString {
		return false
	}
	fmt.Println(t.Column("plan").Strs[0])
	return true
}

func describe(cat *sql.Catalog, name string) {
	t := cat.Table(name)
	if t == nil {
		fmt.Printf("no table %q (tables: %s)\n", name, strings.Join(cat.Names(), ", "))
		return
	}
	fmt.Printf("%s: %d rows\n", t.Name, t.NumRows())
	for _, def := range t.Schema.Columns {
		fmt.Printf("  %-24s %-7s %s\n", def.Name, def.Kind, def.Role)
	}
}

func printResult(t *dataset.Table, maxRows int) {
	headers := make([]string, t.Schema.Len())
	widths := make([]int, t.Schema.Len())
	for i, def := range t.Schema.Columns {
		headers[i] = def.Name
		widths[i] = len(def.Name)
	}
	n := t.NumRows()
	shown := n
	if shown > maxRows {
		shown = maxRows
	}
	cells := make([][]string, shown)
	for r := 0; r < shown; r++ {
		row := t.Row(r)
		cells[r] = make([]string, len(row))
		for c, v := range row {
			s := v.String()
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	line := func(vals []string) {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprintf("%-*s", widths[i], v)
		}
		fmt.Println(strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range cells {
		line(row)
	}
	if shown < n {
		fmt.Printf("... (%d more rows)\n", n-shown)
	}
	fmt.Printf("(%d rows)\n", n)
}
