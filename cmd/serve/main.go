// Command serve hosts the ViewSeeker HTTP UI and JSON API: pick a table,
// type the exploration query, rate the charts the recommender shows, and
// watch the top-k list converge — the browser edition of cmd/viewseeker.
//
// With -cache-dir the server is durable: offline-phase results are
// snapshotted to disk so a restart (or a second session on the same table
// and query) skips the feature computation, and every session's labelling
// history is journalled so interactive sessions survive a restart with
// identical recommendations.
//
// Usage:
//
//	serve [-addr :8080] [-dataset diab -rows 20000] [-cache-dir state/] [name=path.csv ...]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"viewseeker"
	"viewseeker/internal/dataset"
	"viewseeker/internal/server"
	"viewseeker/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		gen        = flag.String("dataset", "diab", "preload a generated dataset: diab, syn, nba or none")
		rows       = flag.Int("rows", 20_000, "rows for the generated dataset")
		seed       = flag.Int64("seed", 1, "generator seed")
		cacheDir   = flag.String("cache-dir", "", "directory for offline-result snapshots and the session journal (empty = in-memory cache only, sessions do not survive restarts)")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline: the handler's context is cancelled and the client gets 503 when a request runs longer (0 disables)")
	)
	flag.Parse()
	var tables []*viewseeker.Table
	switch *gen {
	case "none", "":
	case "diab":
		tables = append(tables, dataset.GenerateDIAB(dataset.DIABConfig{Rows: *rows, Seed: *seed}))
	case "syn":
		tables = append(tables, dataset.GenerateSYN(dataset.SYNConfig{Rows: *rows, Seed: *seed}))
	case "nba":
		tables = append(tables, dataset.GenerateNBA(dataset.NBAConfig{Rows: *rows, Seed: *seed}))
	default:
		fmt.Fprintf(os.Stderr, "serve: unknown dataset %q\n", *gen)
		os.Exit(1)
	}
	for _, arg := range flag.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "serve: argument %q is not name=path.csv\n", arg)
			os.Exit(1)
		}
		t, err := viewseeker.LoadCSV(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		t.Name = name
		if len(t.Schema.Dimensions()) == 0 || len(t.Schema.Measures()) == 0 {
			fmt.Fprintf(os.Stderr, "serve: table %q has no roles; ship a .schema.json sidecar (cmd/datagen writes one)\n", name)
			os.Exit(1)
		}
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "serve: no tables (use -dataset or name=path.csv arguments)")
		os.Exit(1)
	}

	var opts server.Options
	var journal *store.Journal
	if *cacheDir != "" {
		cache, err := store.Open(*cacheDir, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		journal, err = store.OpenJournal(filepath.Join(*cacheDir, "journal.jsonl"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		opts = server.Options{Cache: cache, Journal: journal}
	}
	srv := server.NewWithOptions(opts, tables...)
	if journal != nil {
		recs, err := store.ReadJournal(journal.Path())
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve: reading journal:", err)
			os.Exit(1)
		}
		restored, err := srv.RestoreSessions(recs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve: some sessions were not restored:", err)
		}
		if restored > 0 {
			fmt.Printf("Restored %d session(s) from %s\n", restored, journal.Path())
		}
	}

	fmt.Printf("ViewSeeker UI on http://%s (tables: ", *addr)
	for i, t := range tables {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(t.Name)
	}
	fmt.Println(")")

	handler := srv.Handler()
	// Slow-client defence: bound how long reading a request and writing a
	// response may take, independent of handler work, so a stalled peer
	// cannot pin a connection (and its goroutine) forever.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	if *reqTimeout > 0 {
		// TimeoutHandler puts the deadline on r.Context(): a session whose
		// offline phase overruns is cancelled mid-computation (see the
		// failure-semantics contract in DESIGN.md) and the client gets 503.
		// WriteTimeout sits a little beyond it so the 503 itself can still
		// be written.
		httpSrv.Handler = http.TimeoutHandler(handler, *reqTimeout,
			`{"error":"request exceeded the server's -request-timeout deadline"}`)
		httpSrv.WriteTimeout = *reqTimeout + 5*time.Second
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// drain in-flight requests, then flush the session journal so the next
	// boot restores every session.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("\nserve: shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
		}
		// Shutdown makes ListenAndServe return: drain its error so an
		// abnormal listener exit is still reported, not swallowed.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "serve: listener:", err)
		}
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "serve: closing journal:", err)
			os.Exit(1)
		}
		fmt.Println("serve: session journal flushed")
	}
}
