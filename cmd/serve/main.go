// Command serve hosts the ViewSeeker HTTP UI and JSON API: pick a table,
// type the exploration query, rate the charts the recommender shows, and
// watch the top-k list converge — the browser edition of cmd/viewseeker.
//
// With -cache-dir the server is durable: offline-phase results are
// snapshotted to disk so a restart (or a second session on the same table
// and query) skips the feature computation, and every session's labelling
// history is journalled so interactive sessions survive a restart with
// identical recommendations.
//
// Observability (see the Operations section of README.md): GET /metricz
// serves Prometheus-format metrics and GET /debug/vars the same registry
// as JSON plus recent phase traces; -pprof additionally mounts the
// net/http/pprof profiling handlers under /debug/pprof/, and -trace-log
// streams every completed root span as one JSON line to a file.
//
// With -wal-dir every table is hosted live: POST /api/tables/{name}/append
// durably grows it through a write-ahead log, sessions in flight keep the
// version they started on, and a restart with the same tables and
// directory replays committed appends (a torn tail from a crash is
// truncated; the table comes back at the last committed batch).
//
// With -session-budget-bytes the session population is memory-bounded:
// the coldest idle sessions are evicted once the accounted total exceeds
// the budget and rebuilt transparently from the journal on their next
// touch; when even eviction cannot make room the server sheds new work
// with 429 + Retry-After. See the Scaling section of README.md for
// sizing guidance and DESIGN.md §16 for the mechanism.
//
// Usage:
//
//	serve [-addr :8080] [-dataset diab -rows 20000] [-cache-dir state/] [-session-budget-bytes N] [-wal-dir wal/] [-pprof] [-trace-log spans.jsonl] [name=path.csv ...]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"viewseeker"
	"viewseeker/internal/dataset"
	"viewseeker/internal/server"
	"viewseeker/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		gen        = flag.String("dataset", "diab", "preload a generated dataset: diab, syn, nba or none")
		rows       = flag.Int("rows", 20_000, "rows for the generated dataset")
		seed       = flag.Int64("seed", 1, "generator seed")
		cacheDir   = flag.String("cache-dir", "", "directory for offline-result snapshots and the session journal (empty = in-memory cache only, sessions do not survive restarts)")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline: the handler's context is cancelled and the client gets 503 when a request runs longer (0 disables)")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/ (off by default: profiles expose internals, so opt in explicitly)")
		traceLog   = flag.String("trace-log", "", "append every completed phase trace as one JSON line to this file (empty = traces only in the in-memory ring at /debug/vars)")
		walDir     = flag.String("wal-dir", "", "host every table as a live (appendable) table, write-ahead-logged under this directory as <name>.wal; POST /api/tables/{name}/append grows a table, a restart with the same tables and directory replays committed appends")
		syncEvery  = flag.Int("wal-sync-every", 1, "fsync the WAL once per this many append batches (1 = every batch; higher trades a bounded durability window for append throughput)")
		ckptBytes  = flag.Int64("checkpoint-bytes", 0, "auto-checkpoint a live table whenever its WAL reaches this many bytes: the current version is snapshotted and the log compacted, bounding restart replay (0 = manual checkpoints only via POST /api/tables/{name}/checkpoint)")
		sessBudget = flag.Int64("session-budget-bytes", 0, "memory budget across all interactive sessions: over it, the coldest idle sessions are evicted and rebuilt transparently from the journal on their next touch; when even eviction cannot make room the server sheds with 429 + Retry-After (0 = unbudgeted; see the Scaling section of README.md for sizing)")
	)
	flag.Parse()
	var tables []*viewseeker.Table
	switch *gen {
	case "none", "":
	case "diab":
		tables = append(tables, dataset.GenerateDIAB(dataset.DIABConfig{Rows: *rows, Seed: *seed}))
	case "syn":
		tables = append(tables, dataset.GenerateSYN(dataset.SYNConfig{Rows: *rows, Seed: *seed}))
	case "nba":
		tables = append(tables, dataset.GenerateNBA(dataset.NBAConfig{Rows: *rows, Seed: *seed}))
	default:
		fmt.Fprintf(os.Stderr, "serve: unknown dataset %q\n", *gen)
		os.Exit(1)
	}
	for _, arg := range flag.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "serve: argument %q is not name=path.csv\n", arg)
			os.Exit(1)
		}
		t, err := viewseeker.LoadCSV(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		t.Name = name
		if len(t.Schema.Dimensions()) == 0 || len(t.Schema.Measures()) == 0 {
			fmt.Fprintf(os.Stderr, "serve: table %q has no roles; ship a .schema.json sidecar (cmd/datagen writes one)\n", name)
			os.Exit(1)
		}
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "serve: no tables (use -dataset or name=path.csv arguments)")
		os.Exit(1)
	}

	opts := server.Options{SessionBudgetBytes: *sessBudget}
	var journal *store.Journal
	if *cacheDir != "" {
		cache, err := store.Open(*cacheDir, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		journal, err = store.OpenJournal(filepath.Join(*cacheDir, "journal.jsonl"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		opts.Cache = cache
		opts.Journal = journal
	}
	srv := server.NewWithOptions(opts, tables...)
	if *walDir != "" {
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			lt, rec, err := viewseeker.OpenLiveTableOptions(filepath.Join(*walDir, t.Name+".wal"), t,
				viewseeker.LiveOptions{SyncEvery: *syncEvery, CheckpointBytes: *ckptBytes})
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: opening WAL for %q: %v\n", t.Name, err)
				os.Exit(1)
			}
			defer lt.Close()
			if rec.LastSeq > 0 {
				fmt.Printf("Replayed %d append batch(es) for %q (now %d rows)\n",
					len(rec.Batches), t.Name, lt.Current().NumRows())
			}
			if rec.SkippedFrames > 0 {
				fmt.Printf("Loaded %q from its checkpoint snapshot (%d already-covered WAL frames skipped)\n",
					t.Name, rec.SkippedFrames)
			}
			if rec.TornTail {
				fmt.Printf("serve: truncated a torn WAL tail for %q (%d bytes of an uncommitted append)\n",
					t.Name, rec.TornBytes)
			}
			srv.HostLive(lt, rec)
		}
	}
	if *traceLog != "" {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve: opening trace log:", err)
			os.Exit(1)
		}
		defer f.Close()
		srv.Tracer().SetSink(f)
	}
	if journal != nil {
		recs, err := store.ReadJournal(journal.Path())
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve: reading journal:", err)
			os.Exit(1)
		}
		restored, err := srv.RestoreSessions(recs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve: some sessions were not restored:", err)
		}
		if restored > 0 {
			// Restore is lazy: sessions are indexed cold and each pays its
			// (cache-warm) rebuild on first touch, so boot stays O(records).
			fmt.Printf("Indexed %d session(s) from %s (cold; each rehydrates on first touch)\n",
				restored, journal.Path())
		}
	}
	if *sessBudget > 0 {
		fmt.Printf("Session memory budget: %d bytes (idle sessions evict and rehydrate from the journal)\n", *sessBudget)
	}

	fmt.Printf("ViewSeeker UI on http://%s (tables: ", *addr)
	for i, t := range tables {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(t.Name)
	}
	fmt.Println(")")

	handler := srv.Handler()
	// Slow-client defence: bound how long reading a request and writing a
	// response may take, independent of handler work, so a stalled peer
	// cannot pin a connection (and its goroutine) forever.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	if *reqTimeout > 0 {
		// TimeoutHandler puts the deadline on r.Context(): a session whose
		// offline phase overruns is cancelled mid-computation (see the
		// failure-semantics contract in DESIGN.md) and the client gets 503.
		// WriteTimeout sits a little beyond it so the 503 itself can still
		// be written.
		httpSrv.Handler = http.TimeoutHandler(handler, *reqTimeout,
			`{"error":"request exceeded the server's -request-timeout deadline"}`)
		httpSrv.WriteTimeout = *reqTimeout + 5*time.Second
	}
	if *pprofOn {
		// The pprof mux sits outside the timeout handler: a 30-second CPU
		// profile is supposed to outlive -request-timeout. WriteTimeout is
		// also lifted for the same reason — pprof is an operator opt-in, so
		// trading the slow-client defence for working profiles is deliberate.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", httpSrv.Handler)
		httpSrv.Handler = mux
		httpSrv.WriteTimeout = 0
		fmt.Printf("pprof enabled on http://%s/debug/pprof/\n", *addr)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// drain in-flight requests, then flush the session journal so the next
	// boot restores every session.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("\nserve: shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
		}
		// Shutdown makes ListenAndServe return: drain its error so an
		// abnormal listener exit is still reported, not swallowed.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "serve: listener:", err)
		}
	}
	// Stop background table maintenance before the live tables close under
	// it (their deferred Close also waits out in-flight auto-checkpoints).
	srv.Close()
	if journal != nil {
		if err := journal.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "serve: closing journal:", err)
			os.Exit(1)
		}
		fmt.Println("serve: session journal flushed")
	}
}
