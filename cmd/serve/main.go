// Command serve hosts the ViewSeeker HTTP UI and JSON API: pick a table,
// type the exploration query, rate the charts the recommender shows, and
// watch the top-k list converge — the browser edition of cmd/viewseeker.
//
// Usage:
//
//	serve [-addr :8080] [-dataset diab -rows 20000] [name=path.csv ...]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"viewseeker"
	"viewseeker/internal/dataset"
	"viewseeker/internal/server"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:8080", "listen address")
		gen  = flag.String("dataset", "diab", "preload a generated dataset: diab, syn, nba or none")
		rows = flag.Int("rows", 20_000, "rows for the generated dataset")
		seed = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	var tables []*viewseeker.Table
	switch *gen {
	case "none", "":
	case "diab":
		tables = append(tables, dataset.GenerateDIAB(dataset.DIABConfig{Rows: *rows, Seed: *seed}))
	case "syn":
		tables = append(tables, dataset.GenerateSYN(dataset.SYNConfig{Rows: *rows, Seed: *seed}))
	case "nba":
		tables = append(tables, dataset.GenerateNBA(dataset.NBAConfig{Rows: *rows, Seed: *seed}))
	default:
		fmt.Fprintf(os.Stderr, "serve: unknown dataset %q\n", *gen)
		os.Exit(1)
	}
	for _, arg := range flag.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "serve: argument %q is not name=path.csv\n", arg)
			os.Exit(1)
		}
		t, err := viewseeker.LoadCSV(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		t.Name = name
		if len(t.Schema.Dimensions()) == 0 || len(t.Schema.Measures()) == 0 {
			fmt.Fprintf(os.Stderr, "serve: table %q has no roles; ship a .schema.json sidecar (cmd/datagen writes one)\n", name)
			os.Exit(1)
		}
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "serve: no tables (use -dataset or name=path.csv arguments)")
		os.Exit(1)
	}
	srv := server.New(tables...)
	fmt.Printf("ViewSeeker UI on http://%s (tables: ", *addr)
	for i, t := range tables {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(t.Name)
	}
	fmt.Println(")")
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
