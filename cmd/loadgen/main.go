// Command loadgen drives concurrent synthetic sessions against a running
// serve instance — create, N feedback steps, top-k per session, from a
// bounded worker pool — and prints a JSON report with per-route
// p50/p95/p99 latency and the completed / shed / error split. 429
// responses are retried honouring Retry-After, so a memory-budgeted
// server (serve -session-budget-bytes, DESIGN.md §16) can be probed at
// populations far past its budget: the acceptance bar is "every request
// succeeds or sheds, never 5xx".
//
// A smoke against a local server:
//
//	serve -addr 127.0.0.1:8080 -session-budget-bytes 33554432 &
//	loadgen -addr http://127.0.0.1:8080 -sessions 2000 -concurrency 32 -feedback 5
//
// The exit status is non-zero when any 5xx or transport error occurred,
// so CI can gate on it directly; see also cmd/bench -serve, which runs
// the same engine against an in-process server and writes the tracked
// BENCH_serve.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"viewseeker/internal/dataset"
	"viewseeker/internal/loadgen"
)

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "base URL of the serve instance")
		sessions    = flag.Int("sessions", 1000, "total session population to drive")
		concurrency = flag.Int("concurrency", 16, "sessions in flight at once")
		feedback    = flag.Int("feedback", 5, "labelling steps per session")
		table       = flag.String("table", "diab", "table every session explores")
		query       = flag.String("query", dataset.DIABQuery, "exploration query")
		k           = flag.Int("k", 3, "top-k size per session")
		seed        = flag.Int64("seed", 1, "base seed (per-session seed is seed+index)")
		revisit     = flag.Int("revisit", 1, "extra feedback steps against every completed session after the population has run — the pass that forces evicted sessions to rehydrate (0 disables)")
		retries     = flag.Int("max-retries", 8, "429 retries per request before the session counts as shed")
		retryCap    = flag.Duration("retry-cap", time.Second, "cap on the per-retry Retry-After sleep")
		out         = flag.String("o", "", "also write the JSON report to this file")
	)
	flag.Parse()

	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:     *addr,
		Sessions:    *sessions,
		Concurrency: *concurrency,
		Feedback:    *feedback,
		Table:       *table,
		Query:       *query,
		K:           *k,
		Seed:        *seed,
		Revisit:     *revisit,
		MaxRetries:  *retries,
		RetryCap:    *retryCap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
	if rep.Errors5xx > 0 || rep.TransportErrors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: hard failures: %d 5xx, %d transport\n",
			rep.Errors5xx, rep.TransportErrors)
		os.Exit(1)
	}
}
