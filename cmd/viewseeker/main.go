// Command viewseeker runs an interactive view-recommendation session in
// the terminal: it presents one view at a time as ASCII bar charts, reads
// a 0–1 interest label from stdin, and prints the current top-k after each
// iteration. With -simulate N the session is driven by the simulated user
// of the paper's Table 2 ideal utility function #N instead of stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"viewseeker"
	"viewseeker/internal/dataset"
	"viewseeker/internal/feature"
	"viewseeker/internal/sim"
)

func main() {
	var (
		csvPath   = flag.String("data", "", "CSV file to explore (otherwise use -dataset)")
		dims      = flag.String("dims", "", "comma-separated dimension columns (required with -data)")
		measures  = flag.String("measures", "", "comma-separated measure columns (required with -data)")
		gendata   = flag.String("dataset", "diab", "generated dataset when -data is absent: diab, syn or nba")
		rows      = flag.Int("rows", 20000, "rows for generated datasets")
		query     = flag.String("query", "", "SQL query selecting the exploration subset DQ (default: the dataset's canonical query)")
		k         = flag.Int("k", 5, "recommendation size")
		alpha     = flag.Float64("alpha", 1.0, "partial-data ratio for the offline feature pass (<1 enables incremental refinement)")
		workers   = flag.Int("workers", 0, "offline-phase and refinement parallelism (0 = all CPUs, 1 = sequential)")
		seed      = flag.Int64("seed", 1, "random seed")
		maxIters  = flag.Int("max-iters", 30, "maximum labelling iterations")
		simulateF = flag.Int("simulate", 0, "drive the session with Table 2 ideal utility function #N (1-11) instead of stdin")
		savePath  = flag.String("save", "", "write the session's labelling history to this JSON file on exit")
		loadPath  = flag.String("resume", "", "resume a session saved with -save (requires identical data flags)")
		chart     = flag.String("chart", "bar", "chart style for presented views: bar or line")
		cacheDir  = flag.String("cache-dir", "", "directory for offline-result snapshots: a rerun on the same data and query skips the offline feature pass")
	)
	flag.Parse()

	table, defaultQuery, err := loadTable(*csvPath, *dims, *measures, *gendata, *rows, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "viewseeker:", err)
		os.Exit(1)
	}
	if *query == "" {
		*query = defaultQuery
	}
	if *query == "" {
		fmt.Fprintln(os.Stderr, "viewseeker: -query is required for CSV data")
		os.Exit(1)
	}
	if *chart != "bar" && *chart != "line" {
		fmt.Fprintf(os.Stderr, "viewseeker: -chart must be bar or line, got %q\n", *chart)
		os.Exit(1)
	}
	if err := run(table, *query, *k, *alpha, *workers, *seed, *maxIters, *simulateF, *savePath, *loadPath, *chart, *cacheDir); err != nil {
		fmt.Fprintln(os.Stderr, "viewseeker:", err)
		os.Exit(1)
	}
}

func loadTable(csvPath, dims, measures, gendata string, rows int, seed int64) (*viewseeker.Table, string, error) {
	if csvPath != "" {
		t, err := viewseeker.LoadCSV(csvPath)
		if err != nil {
			return nil, "", err
		}
		if dims != "" || measures != "" {
			if err := viewseeker.AssignRoles(t, splitList(dims), splitList(measures)); err != nil {
				return nil, "", err
			}
		}
		if len(t.Schema.Dimensions()) == 0 || len(t.Schema.Measures()) == 0 {
			return nil, "", fmt.Errorf("no dimension/measure roles: pass -dims and -measures, or ship a .schema.json sidecar next to the CSV (cmd/datagen writes one)")
		}
		return t, "", nil
	}
	switch gendata {
	case "diab":
		return dataset.GenerateDIAB(dataset.DIABConfig{Rows: rows, Seed: seed}), dataset.DIABQuery, nil
	case "syn":
		return dataset.GenerateSYN(dataset.SYNConfig{Rows: rows, Seed: seed}), dataset.SYNQuery, nil
	case "nba":
		return dataset.GenerateNBA(dataset.NBAConfig{Rows: rows, Seed: seed, HotTeam: "GSW"}), dataset.NBAQueryFor("GSW"), nil
	default:
		return nil, "", fmt.Errorf("unknown dataset %q (want diab, syn or nba)", gendata)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(table *viewseeker.Table, query string, k int, alpha float64, workers int, seed int64, maxIters, simulate int, savePath, loadPath, chart, cacheDir string) error {
	opts := viewseeker.Options{K: k, Alpha: alpha, Seed: seed, Workers: workers}
	if cacheDir != "" {
		cache, err := viewseeker.OpenCache(cacheDir, 0)
		if err != nil {
			return err
		}
		opts.Cache = cache
	}
	s, err := viewseeker.New(table, query, opts)
	if err != nil {
		return err
	}
	if opts.Cache != nil {
		if s.CacheHit() {
			fmt.Println("Offline phase: served from cache")
		} else {
			fmt.Println("Offline phase: computed and cached")
		}
	}
	fmt.Printf("Exploring %q (%d rows), DQ = %q (%d rows)\n",
		table.Name, table.NumRows(), query, s.Target().NumRows())
	fmt.Printf("View space: %d views, %d utility features\n\n", s.NumViews(), len(s.FeatureNames()))
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return err
		}
		err = s.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("resuming session: %w", err)
		}
		fmt.Printf("Resumed session with %d labels from %s\n\n", s.NumLabels(), loadPath)
	}
	if savePath != "" {
		defer func() {
			f, err := os.Create(savePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "viewseeker: saving session:", err)
				return
			}
			defer f.Close()
			if err := s.Save(f); err != nil {
				fmt.Fprintln(os.Stderr, "viewseeker: saving session:", err)
				return
			}
			fmt.Printf("Session (%d labels) saved to %s\n", s.NumLabels(), savePath)
		}()
	}

	var user *sim.User
	if simulate > 0 {
		fns := sim.IdealFunctions()
		if simulate > len(fns) {
			return fmt.Errorf("-simulate must be 1..%d", len(fns))
		}
		// The simulated user judges views by exact features; build them
		// through a throwaway exact session when alpha < 1.
		exactSeeker := s
		if alpha < 1 {
			exactSeeker, err = viewseeker.New(table, query, viewseeker.Options{K: k, Seed: seed, Workers: workers})
			if err != nil {
				return err
			}
		}
		user, err = simulatedUser(exactSeeker, fns[simulate-1])
		if err != nil {
			return err
		}
		fmt.Printf("Simulated user: u*() = %s\n\n", fns[simulate-1].Name())
	}

	in := bufio.NewScanner(os.Stdin)
	for iter := 1; iter <= maxIters; iter++ {
		v, err := s.Next()
		if err != nil {
			fmt.Println("Every view has been labelled.")
			break
		}
		var rendering string
		if chart == "line" {
			p, err := s.Pair(v.Index)
			if err != nil {
				return err
			}
			rendering = p.RenderLine(0)
		} else {
			var err error
			rendering, err = s.Render(v.Index)
			if err != nil {
				return err
			}
		}
		fmt.Printf("--- iteration %d ---\n%s\n", iter, rendering)
		if why, err := s.Explain(v.Index, 2); err == nil && why != "" {
			fmt.Printf("what stands out:\n%s\n", why)
		}
		var label float64
		if user != nil {
			label = user.Label(v.Index)
			fmt.Printf("simulated label: %.2f\n", label)
		} else {
			label, err = askLabel(in)
			if err != nil {
				return err
			}
			if label < 0 {
				fmt.Println("Session ended by user.")
				break
			}
		}
		if err := s.Feedback(v.Index, label); err != nil {
			return err
		}
		fmt.Printf("\nTop-%d after %d labels:\n", k, s.NumLabels())
		for rank, tv := range s.TopK() {
			fmt.Printf("  %2d. %-40s score %.4f\n", rank+1, tv.Spec, tv.Score)
		}
		fmt.Println()
		if user != nil {
			pred := make([]int, 0, k)
			for _, tv := range s.TopK() {
				pred = append(pred, tv.Index)
			}
			p, err := sim.Precision(pred, user.Scores(), k)
			if err != nil {
				return err
			}
			fmt.Printf("top-%d precision vs u*: %.2f\n\n", k, p)
			if p >= 1 {
				fmt.Printf("Reached 100%% precision after %d labels.\n", s.NumLabels())
				break
			}
		}
	}

	w, intercept := s.Weights()
	if w != nil {
		fmt.Println("Learned utility function (Eq. 4):")
		for _, name := range s.FeatureNames() {
			fmt.Printf("  %-10s %+.4f\n", name, w[name])
		}
		fmt.Printf("  intercept  %+.4f\n", intercept)
	}
	return nil
}

// simulatedUser builds the ground-truth labeller from an exact session's
// feature matrix via the sim package.
func simulatedUser(s *viewseeker.Seeker, fn sim.IdealFunction) (*sim.User, error) {
	m, err := exactMatrixOf(s)
	if err != nil {
		return nil, err
	}
	return sim.NewUser(fn, m)
}

// exactMatrixOf recomputes the exact feature matrix of a session's view
// space using the public API surface plus the feature package.
func exactMatrixOf(s *viewseeker.Seeker) (*feature.Matrix, error) {
	reg := feature.StandardRegistry()
	rows := make([][]float64, s.NumViews())
	for i := 0; i < s.NumViews(); i++ {
		p, err := s.Pair(i)
		if err != nil {
			return nil, err
		}
		vec, err := reg.Vector(p)
		if err != nil {
			return nil, err
		}
		rows[i] = vec
	}
	return &feature.Matrix{Specs: s.Specs(), Names: reg.Names(), Rows: rows, Exact: make([]bool, len(rows))}, nil
}

func askLabel(in *bufio.Scanner) (float64, error) {
	for {
		fmt.Print("How interesting is this view? [0.0-1.0, or q to stop] ")
		if !in.Scan() {
			return -1, nil
		}
		text := strings.TrimSpace(in.Text())
		if text == "q" || text == "quit" {
			return -1, nil
		}
		label, err := strconv.ParseFloat(text, 64)
		if err == nil && label >= 0 && label <= 1 {
			return label, nil
		}
		fmt.Println("please enter a number between 0 and 1")
	}
}
