// Command datagen writes the synthetic testbed datasets (SYN, DIAB, NBA)
// to CSV so they can be inspected, loaded into other tools, or fed back to
// cmd/viewseeker via -data.
//
// With -append-batches N the rows are split into a base table plus N
// equal append batches (<out>.batch1.csv … <out>.batchN.csv), the input
// shape for exercising the live-table append path: serve the base with
// -wal-dir and feed the batches to POST /api/tables/{name}/append.
//
// With -drift D each batch K additionally has every numeric cell offset
// by K*D — a distribution-shifted append stream whose values progressively
// escape bin layouts fitted to the base, for exercising drift-triggered
// rebuilds (viewseeker.Options.DriftThreshold).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"viewseeker/internal/dataset"
)

func main() {
	var (
		name    = flag.String("dataset", "diab", "dataset to generate: diab, syn or nba")
		rows    = flag.Int("rows", 0, "record count (0 = the dataset's paper-scale default)")
		seed    = flag.Int64("seed", 0, "generator seed (0 = the dataset's default)")
		out     = flag.String("out", "", "output CSV path (default <dataset>.csv)")
		batches = flag.Int("append-batches", 0, "split the rows into a base CSV plus this many append-batch CSVs (<out>.batchK.csv), for replaying through the live-table append API")
		drift   = flag.Float64("drift", 0, "offset every numeric cell of append batch K by K times this value, simulating distribution drift (requires -append-batches)")
	)
	flag.Parse()
	var t *dataset.Table
	switch *name {
	case "diab":
		cfg := dataset.DefaultDIABConfig()
		if *rows > 0 {
			cfg.Rows = *rows
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		t = dataset.GenerateDIAB(cfg)
	case "syn":
		cfg := dataset.DefaultSYNConfig()
		if *rows > 0 {
			cfg.Rows = *rows
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		t = dataset.GenerateSYN(cfg)
	case "nba":
		cfg := dataset.DefaultNBAConfig()
		if *rows > 0 {
			cfg.Rows = *rows
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		t = dataset.GenerateNBA(cfg)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = *name + ".csv"
	}
	if *drift != 0 && *batches <= 0 {
		fmt.Fprintln(os.Stderr, "datagen: -drift requires -append-batches")
		os.Exit(1)
	}
	if *batches > 0 {
		writeAppendBatches(t, path, *batches, *drift)
		return
	}
	if err := dataset.WriteCSVWithSchema(t, path); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d rows × %d columns to %s (+ .schema.json sidecar)\n", t.NumRows(), t.Schema.Len(), path)
	fmt.Printf("dimensions: %v\n", t.Schema.Dimensions())
	fmt.Printf("measures:   %v\n", t.Schema.Measures())
}

// writeAppendBatches splits the table into a base CSV plus n append-batch
// CSVs. The batches together hold the last tenth of the rows, split
// evenly — large base, small appends, the shape incremental maintenance
// is built for. A non-zero drift offsets batch K's numeric cells by K*drift.
func writeAppendBatches(t *dataset.Table, path string, n int, drift float64) {
	per := t.NumRows() / (10 * n)
	if per < 1 {
		fmt.Fprintf(os.Stderr, "datagen: %d rows cannot fill %d append batches (need at least %d rows)\n",
			t.NumRows(), n, 10*n)
		os.Exit(1)
	}
	baseRows := t.NumRows() - per*n
	write := func(sub *dataset.Table, p string) {
		if err := dataset.WriteCSVWithSchema(sub, p); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
	}
	write(t.Subset(t.Name, seq(0, baseRows)), path)
	fmt.Printf("wrote base %s: %d rows × %d columns (+ .schema.json sidecar)\n", path, baseRows, t.Schema.Len())
	stem := strings.TrimSuffix(path, ".csv")
	for k := 1; k <= n; k++ {
		from := baseRows + (k-1)*per
		p := fmt.Sprintf("%s.batch%d.csv", stem, k)
		sub := t.Subset(t.Name, seq(from, from+per))
		if drift != 0 {
			sub = shiftNumeric(sub, float64(k)*drift)
		}
		write(sub, p)
		if drift != 0 {
			fmt.Printf("wrote batch %s: %d rows (numeric cells shifted by %+g)\n", p, per, float64(k)*drift)
		} else {
			fmt.Printf("wrote batch %s: %d rows\n", p, per)
		}
	}
}

// shiftNumeric returns a copy of t with every non-null numeric cell offset
// by delta, preserving column kinds (int columns round toward zero).
func shiftNumeric(t *dataset.Table, delta float64) *dataset.Table {
	out := dataset.NewTable(t.Name, t.Schema)
	for r := 0; r < t.NumRows(); r++ {
		vals := t.Row(r)
		for j, v := range vals {
			if v.IsNull() {
				continue
			}
			switch v.Kind {
			case dataset.KindFloat:
				f, _ := v.AsFloat()
				vals[j] = dataset.Float(f + delta)
			case dataset.KindInt:
				i, _ := v.AsInt()
				vals[j] = dataset.Int(i + int64(delta))
			}
		}
		out.MustAppendRow(vals...)
	}
	return out
}

func seq(from, to int) []int {
	out := make([]int, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, i)
	}
	return out
}
