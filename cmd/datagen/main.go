// Command datagen writes the synthetic testbed datasets (SYN, DIAB, NBA)
// to CSV so they can be inspected, loaded into other tools, or fed back to
// cmd/viewseeker via -data.
package main

import (
	"flag"
	"fmt"
	"os"

	"viewseeker/internal/dataset"
)

func main() {
	var (
		name = flag.String("dataset", "diab", "dataset to generate: diab, syn or nba")
		rows = flag.Int("rows", 0, "record count (0 = the dataset's paper-scale default)")
		seed = flag.Int64("seed", 0, "generator seed (0 = the dataset's default)")
		out  = flag.String("out", "", "output CSV path (default <dataset>.csv)")
	)
	flag.Parse()
	var t *dataset.Table
	switch *name {
	case "diab":
		cfg := dataset.DefaultDIABConfig()
		if *rows > 0 {
			cfg.Rows = *rows
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		t = dataset.GenerateDIAB(cfg)
	case "syn":
		cfg := dataset.DefaultSYNConfig()
		if *rows > 0 {
			cfg.Rows = *rows
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		t = dataset.GenerateSYN(cfg)
	case "nba":
		cfg := dataset.DefaultNBAConfig()
		if *rows > 0 {
			cfg.Rows = *rows
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		t = dataset.GenerateNBA(cfg)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = *name + ".csv"
	}
	if err := dataset.WriteCSVWithSchema(t, path); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d rows × %d columns to %s (+ .schema.json sidecar)\n", t.NumRows(), t.Schema.Len(), path)
	fmt.Printf("dimensions: %v\n", t.Schema.Dimensions())
	fmt.Printf("measures:   %v\n", t.Schema.Measures())
}
