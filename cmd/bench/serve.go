package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"viewseeker/internal/dataset"
	"viewseeker/internal/loadgen"
	"viewseeker/internal/server"
)

// serveResult is the BENCH_serve.json document: a memory-budgeted server
// under a synthetic session population several times its budget, the
// acceptance surface for the session lifecycle (DESIGN.md §16). The
// budget is derived from a measured per-session estimate — BudgetFraction
// of what the whole population would cost resident — so the run forces
// sustained eviction and rehydration.
type serveResult struct {
	SchemaVersion int    `json:"schema_version"`
	Description   string `json:"description"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`

	Dataset     string `json:"dataset"`
	Rows        int    `json:"rows"`
	Sessions    int    `json:"sessions"`
	Concurrency int    `json:"concurrency"`
	Feedback    int    `json:"feedback"`

	// PerSessionBytes is the accounted estimate measured from a probe
	// session; BudgetBytes = PerSessionBytes × Sessions × BudgetFraction.
	PerSessionBytes int64   `json:"per_session_bytes"`
	BudgetFraction  float64 `json:"budget_fraction"`
	BudgetBytes     int64   `json:"budget_bytes"`

	// MaxResidentBytes is the highest value the resident-bytes gauge took
	// while sampling through the run; UnderBudget asserts it stayed at or
	// under BudgetBytes.
	MaxResidentBytes int64 `json:"max_resident_bytes"`
	UnderBudget      bool  `json:"under_budget"`

	// Lifecycle churn over the run, from the server's own counters, and
	// the mean journal-replay rebuild cost.
	Evictions         int64   `json:"evictions"`
	Rehydrations      int64   `json:"rehydrations"`
	MeanRehydrationMs float64 `json:"mean_rehydration_ms"`

	// BitIdentical records the pre-flight exactness check: a session
	// evicted between every step answered byte-identically to an
	// unevicted twin.
	BitIdentical bool `json:"bit_identical"`

	// Load is the generator's own report: completed/shed split, per-route
	// p50/p95/p99, and the hard-failure counts (which must be zero).
	Load *loadgen.Report `json:"load"`
}

// benchServe measures the serving path under a deliberately undersized
// session budget and writes BENCH_serve.json.
func benchServe(sessions, concurrency, feedback int, fraction float64, out string) {
	const rows = 2000
	table := dataset.GenerateDIAB(dataset.DIABConfig{Rows: rows, Seed: 51})

	// Probe the accounted per-session cost on an unbudgeted twin.
	per := probeSessionBytes(table)
	budget := int64(float64(per) * float64(sessions) * fraction)
	fmt.Fprintf(os.Stderr, "bench: -serve: %d B/session, budget %d B (%.0f%% of %d sessions)\n",
		per, budget, fraction*100, sessions)

	bit := verifyBitIdentity(table)
	if !bit {
		log.Fatal("bench: -serve: post-eviction responses diverged from the unevicted control")
	}

	srv := server.NewWithOptions(server.Options{SessionBudgetBytes: budget, Logger: quietLogger()}, table)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Sample the resident gauge through the run: the acceptance bar is
	// that accounted session bytes never exceed the budget (the busy set
	// is bounded by concurrency × per-session, kept under budget here).
	var maxResident atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				v := int64(srv.Metrics().Snapshot()["viewseeker_session_resident_bytes"])
				if v > maxResident.Load() {
					maxResident.Store(v)
				}
			}
		}
	}()

	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:     ts.URL,
		Sessions:    sessions,
		Concurrency: concurrency,
		Feedback:    feedback,
		Table:       "diab",
		Query:       dataset.DIABQuery,
		K:           3,
		Seed:        7,
		Revisit:     1,
		RetryCap:    50 * time.Millisecond,
	})
	close(stop)
	<-done
	if err != nil {
		log.Fatalf("bench: -serve: %v", err)
	}

	snap := srv.Metrics().Snapshot()
	doc := serveResult{
		SchemaVersion: 1,
		Description: "Memory-budgeted serving on DIAB: a synthetic session population " +
			"driven against a budget sized for a fraction of it, forcing LRU " +
			"eviction and bit-identical journal-replay rehydration; every request " +
			"must succeed or shed with 429, and accounted resident session bytes " +
			"must stay under budget.",
		GoVersion:        runtime.Version(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Dataset:          "diab",
		Rows:             rows,
		Sessions:         sessions,
		Concurrency:      concurrency,
		Feedback:         feedback,
		PerSessionBytes:  per,
		BudgetFraction:   fraction,
		BudgetBytes:      budget,
		MaxResidentBytes: maxResident.Load(),
		UnderBudget:      maxResident.Load() <= budget,
		Evictions:        int64(snap["viewseeker_session_evictions_total"]),
		Rehydrations:     int64(snap["viewseeker_session_rehydrations_total"]),
		BitIdentical:     bit,
		Load:             rep,
	}
	if count := snap["viewseeker_session_rehydration_seconds_count"]; count > 0 {
		doc.MeanRehydrationMs = snap["viewseeker_session_rehydration_seconds_sum"] / count * 1000
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (completed %d/%d, evictions %d, rehydrations %d, max resident %d/%d B)\n",
		out, rep.Completed, sessions, doc.Evictions, doc.Rehydrations, doc.MaxResidentBytes, budget)
}

// quietLogger drops the per-request access lines: a load run issues tens
// of thousands of requests and the report is the output that matters.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// probeSessionBytes creates one session on an unbudgeted server and reads
// back its accounted cost from the resident-bytes gauge.
func probeSessionBytes(table *dataset.Table) int64 {
	srv := server.NewWithOptions(server.Options{Logger: quietLogger()}, table)
	rec := postJSON(srv.Handler(), "/api/sessions", map[string]any{
		"table": "diab", "query": dataset.DIABQuery, "k": 3, "seed": 7,
	})
	if rec.Code != http.StatusCreated {
		log.Fatalf("bench: -serve: probe session = %d: %s", rec.Code, rec.Body.String())
	}
	per := int64(srv.Metrics().Snapshot()["viewseeker_session_resident_bytes"])
	if per <= 0 {
		log.Fatal("bench: -serve: probe session accounted zero bytes")
	}
	return per
}

// verifyBitIdentity drives the same labelling conversation through a
// 1-byte-budget server (evicted between every step) and an unbudgeted
// control, comparing raw response bytes on the feedback, top and weights
// routes.
func verifyBitIdentity(table *dataset.Table) bool {
	budgeted := server.NewWithOptions(server.Options{SessionBudgetBytes: 1, Logger: quietLogger()}, table)
	control := server.NewWithOptions(server.Options{Logger: quietLogger()}, table)
	bh, ch := budgeted.Handler(), control.Handler()

	create := map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 5, "seed": 7}
	var bID, cID struct {
		ID string `json:"id"`
	}
	rb, rc := postJSON(bh, "/api/sessions", create), postJSON(ch, "/api/sessions", create)
	if rb.Code != http.StatusCreated || rc.Code != http.StatusCreated {
		log.Fatalf("bench: -serve: identity creates = %d / %d", rb.Code, rc.Code)
	}
	_ = json.Unmarshal(rb.Body.Bytes(), &bID)
	_ = json.Unmarshal(rc.Body.Bytes(), &cID)

	steps := []struct {
		view  int
		label float64
	}{{4, 1}, {11, 0}, {42, 0.5}, {7, 1}}
	for _, fb := range steps {
		budgeted.EvictIdleSessions()
		body := map[string]any{"index": fb.view, "label": fb.label}
		b := postJSON(bh, "/api/sessions/"+bID.ID+"/feedback", body)
		c := postJSON(ch, "/api/sessions/"+cID.ID+"/feedback", body)
		if b.Code != http.StatusOK || c.Code != http.StatusOK || b.Body.String() != c.Body.String() {
			return false
		}
		for _, route := range []string{"/top", "/weights"} {
			b := getJSON(bh, "/api/sessions/"+bID.ID+route)
			c := getJSON(ch, "/api/sessions/"+cID.ID+route)
			if b.Body.String() != c.Body.String() {
				return false
			}
		}
	}
	return true
}

func postJSON(h http.Handler, path string, body any) *httptest.ResponseRecorder {
	b, _ := json.Marshal(body)
	req := httptest.NewRequest("POST", path, bytes.NewReader(b)).WithContext(context.Background())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func getJSON(h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// checkServeReport validates a tracked BENCH_serve.json: the lifecycle
// acceptance bars — sessions completed, no hard failures, eviction and
// rehydration actually exercised, resident bytes gauge-verified under
// budget, bit-identity held, and the feedback route interactive (p99
// under the paper's one-second bar).
func checkServeReport(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("bench: -check-serve: %v", err)
	}
	var rep serveResult
	if err := json.Unmarshal(data, &rep); err != nil {
		log.Fatalf("bench: -check-serve %s: %v", path, err)
	}
	if rep.SchemaVersion != 1 {
		log.Fatalf("bench: -check-serve %s: schema_version = %d, want 1", path, rep.SchemaVersion)
	}
	if rep.Load == nil {
		log.Fatalf("bench: -check-serve %s: no load report", path)
	}
	fail := func(format string, args ...any) {
		log.Fatalf("bench: -check-serve %s: "+format, append([]any{path}, args...)...)
	}
	if rep.Load.Completed <= 0 {
		fail("no sessions completed")
	}
	if rep.Load.Errors5xx != 0 || rep.Load.TransportErrors != 0 {
		fail("hard failures: %d 5xx, %d transport (must be 0)", rep.Load.Errors5xx, rep.Load.TransportErrors)
	}
	if rep.Evictions <= 0 || rep.Rehydrations <= 0 {
		fail("lifecycle not exercised: %d evictions, %d rehydrations", rep.Evictions, rep.Rehydrations)
	}
	if !rep.UnderBudget {
		fail("resident bytes peaked at %d over budget %d", rep.MaxResidentBytes, rep.BudgetBytes)
	}
	if !rep.BitIdentical {
		fail("bit_identical = false")
	}
	fb, ok := rep.Load.Routes["feedback"]
	if !ok || fb.Count == 0 {
		fail("no feedback route stats")
	}
	if fb.P99Ms >= 1000 {
		fail("feedback p99 = %.1f ms, want < 1000 (interactivity)", fb.P99Ms)
	}
	fmt.Fprintf(os.Stderr,
		"bench: -check-serve %s ok (%d/%d completed, %d evictions, %d rehydrations, max resident %d/%d B, feedback p99 %.1f ms)\n",
		path, rep.Load.Completed, rep.Sessions, rep.Evictions, rep.Rehydrations,
		rep.MaxResidentBytes, rep.BudgetBytes, fb.P99Ms)
}
