package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"viewseeker"
	"viewseeker/internal/dataset"
	"viewseeker/internal/feature"
	"viewseeker/internal/view"
)

// appendResult is one live-table datapoint: WAL-append throughput plus the
// cost of keeping the offline result current — incrementally (Advance)
// versus recomputing from scratch.
type appendResult struct {
	Dataset    string `json:"dataset"`
	Rows       int    `json:"rows"`
	AppendRows int    `json:"append_rows"`
	// WalAppendNs is one durable Append call (encode, write, fsync,
	// copy-on-append publish) for the whole batch.
	WalAppendNs      int64   `json:"wal_append_ns"`
	WalAppendRowsSec float64 `json:"wal_append_rows_per_sec"`
	// DeltaNs is Maintained.Advance: rerun the exploration query, verify
	// the prefix, extend bin indexes / stats / matrix with the suffix.
	DeltaNs int64 `json:"delta_maintain_ns"`
	// RebuildNs is what a non-incremental system pays on every append:
	// query, generator, full feature pass over the grown table.
	RebuildNs int64   `json:"full_rebuild_ns"`
	Speedup   float64 `json:"delta_vs_rebuild_speedup"`
	// Recovery: reopen the live table from its WAL — once replaying the
	// full append history, once after a checkpoint compacted the log down
	// to a one-batch suffix. The second number is what a restart pays
	// regardless of how much history the table has accumulated.
	RecoveryHistoryBatches int   `json:"recovery_history_batches"`
	RecoveryFullReplayNs   int64 `json:"recovery_full_replay_ns"`
	RecoveryFullBatches    int   `json:"recovery_full_replayed_batches"`
	RecoveryCheckpointNs   int64 `json:"recovery_checkpoint_ns"`
	RecoveryCkptBatches    int   `json:"recovery_checkpoint_replayed_batches"`
}

// appendReport is the BENCH_append.json document.
type appendReport struct {
	SchemaVersion int            `json:"schema_version"`
	Description   string         `json:"description"`
	GoVersion     string         `json:"go_version"`
	GOMAXPROCS    int            `json:"gomaxprocs"`
	Results       []appendResult `json:"results"`
}

// benchAppend measures the live-table append path on SYN at each scale
// (1% of the rows appended in one batch) and writes the report. Before
// timing, it verifies the incrementally maintained matrix is bit-identical
// to a pinned-layout recomputation — the same identity the property tests
// pin, enforced here on the actual benchmark tables.
func benchAppend(scales []int, pct float64, out string) {
	rep := appendReport{
		SchemaVersion: 2,
		Description: "Live-table append path on SYN: durable WAL append throughput, " +
			"incremental view maintenance (Maintained.Advance) vs a full offline " +
			"recompute after appending " + fmt.Sprintf("%g%%", pct*100) + " of the rows, " +
			"and restart recovery time replaying the full append history vs reopening " +
			"from a checkpoint snapshot with a compacted log.",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, rows := range scales {
		fmt.Fprintf(os.Stderr, "bench: append SYN %d rows\n", rows)
		rep.Results = append(rep.Results, benchAppendScale(rows, pct))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", out)
}

func benchAppendScale(rows int, pct float64) appendResult {
	appendRows := int(float64(rows) * pct)
	if appendRows < 1 {
		appendRows = 1
	}
	full := dataset.GenerateSYN(dataset.SYNConfig{Rows: rows + appendRows, Seed: 1})
	baseIdx := make([]int, rows)
	for i := range baseIdx {
		baseIdx[i] = i
	}
	base := full.Subset(full.Name, baseIdx)
	if err := dataset.AssignRoles(base, full.Schema.Dimensions(), full.Schema.Measures()); err != nil {
		log.Fatal(err)
	}
	batch := make([][]dataset.Value, appendRows)
	for i := range batch {
		batch[i] = full.Row(rows + i)
	}
	opts := viewseeker.Options{BinCounts: []int{3, 4}}
	verifyAppendIdentity(base, batch, opts)

	res := appendResult{Dataset: "SYN", Rows: rows, AppendRows: appendRows}
	const trials = 3
	res.WalAppendNs = math.MaxInt64
	res.DeltaNs = math.MaxInt64
	res.RebuildNs = math.MaxInt64
	dir, err := os.MkdirTemp("", "bench-append")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	for trial := 0; trial < trials; trial++ {
		lt, _, err := viewseeker.OpenLiveTable(
			filepath.Join(dir, fmt.Sprintf("t%d.wal", trial)), base, 1)
		if err != nil {
			log.Fatal(err)
		}
		m, err := viewseeker.Maintain(lt, dataset.SYNQuery, opts)
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		if _, err := lt.Append(batch); err != nil {
			log.Fatal(err)
		}
		res.WalAppendNs = min64(res.WalAppendNs, time.Since(start).Nanoseconds())

		start = time.Now()
		changed, err := m.Advance()
		res.DeltaNs = min64(res.DeltaNs, time.Since(start).Nanoseconds())
		if err != nil || !changed {
			log.Fatalf("bench: Advance: changed %v err %v", changed, err)
		}
		if st := m.Stats(); st.Extended != 1 || st.Rebuilt != 0 {
			log.Fatalf("bench: Advance fell back to a rebuild (extended %d rebuilt %d) — nothing incremental to measure", st.Extended, st.Rebuilt)
		}

		// The non-incremental contender: full offline pass over the grown
		// table (query, generator, exact feature matrix).
		cur := lt.Current()
		start = time.Now()
		tgt, err := viewseeker.Query(cur, dataset.SYNQuery)
		if err != nil {
			log.Fatal(err)
		}
		tgt.Name = cur.Name + "_dq"
		g, err := view.NewGenerator(cur, tgt, view.SpaceConfig{BinCounts: []int{3, 4}})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := feature.Compute(g, feature.StandardRegistry()); err != nil {
			log.Fatal(err)
		}
		res.RebuildNs = min64(res.RebuildNs, time.Since(start).Nanoseconds())
		lt.Close()
	}
	if res.WalAppendNs > 0 {
		res.WalAppendRowsSec = float64(appendRows) / (float64(res.WalAppendNs) * 1e-9)
	}
	if res.DeltaNs > 0 {
		res.Speedup = round2(float64(res.RebuildNs) / float64(res.DeltaNs))
	}
	benchRecovery(dir, base, batch, &res)
	fmt.Fprintf(os.Stderr,
		"  wal_append %12d ns (%10.0f rows/s)  delta %12d ns  rebuild %12d ns  speedup %.1fx\n",
		res.WalAppendNs, res.WalAppendRowsSec, res.DeltaNs, res.RebuildNs, res.Speedup)
	fmt.Fprintf(os.Stderr,
		"  recovery   %12d ns replaying %d batches  vs %12d ns from checkpoint (%d-batch suffix)\n",
		res.RecoveryFullReplayNs, res.RecoveryFullBatches,
		res.RecoveryCheckpointNs, res.RecoveryCkptBatches)
	return res
}

// recoveryHistoryBatches is how many append batches the recovery
// measurement accumulates before reopening. Full replay publishes a
// version per batch, so its cost grows linearly with this count, while
// the post-checkpoint reopen pays one snapshot load however deep the
// history — 64 batches puts the crossover well behind us at every scale.
const recoveryHistoryBatches = 64

// benchRecovery measures restart cost. It grows a live table by
// recoveryHistoryBatches WAL'd appends and times a reopen that replays all
// of them; then it checkpoints (snapshot + log compaction), appends one
// more batch, and times the reopen again — now a snapshot load plus a
// one-batch suffix, however long the history was. Best of three reopens
// each, and both recoveries are checked to land on the right row count.
func benchRecovery(dir string, base *dataset.Table, batch [][]dataset.Value, res *appendResult) {
	path := filepath.Join(dir, "recovery.wal")
	lt, _, err := viewseeker.OpenLiveTable(path, base, 1)
	if err != nil {
		log.Fatal(err)
	}
	per := len(batch) / recoveryHistoryBatches
	if per < 1 {
		per = 1
	}
	history := 0
	for at := 0; at < len(batch); at += per {
		end := at + per
		if end > len(batch) {
			end = len(batch)
		}
		if _, err := lt.Append(batch[at:end]); err != nil {
			log.Fatal(err)
		}
		history++
	}
	if err := lt.Close(); err != nil {
		log.Fatal(err)
	}
	res.RecoveryHistoryBatches = history
	wantRows := base.NumRows() + len(batch)

	reopen := func(wantBatches, wantRows int) int64 {
		best := int64(math.MaxInt64)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			lt, rec, err := viewseeker.OpenLiveTable(path, base, 1)
			elapsed := time.Since(start).Nanoseconds()
			if err != nil {
				log.Fatal(err)
			}
			if len(rec.Batches) != wantBatches || lt.Current().NumRows() != wantRows {
				log.Fatalf("bench: recovery replayed %d batches to %d rows, want %d batches to %d rows",
					len(rec.Batches), lt.Current().NumRows(), wantBatches, wantRows)
			}
			lt.Close()
			best = min64(best, elapsed)
		}
		return best
	}

	res.RecoveryFullBatches = history
	res.RecoveryFullReplayNs = reopen(history, wantRows)

	// Checkpoint the full history away, then append one more batch so the
	// post-compaction restart still has a (bounded) suffix to replay.
	lt, _, err = viewseeker.OpenLiveTable(path, base, 1)
	if err != nil {
		log.Fatal(err)
	}
	if seq, err := lt.Checkpoint(); err != nil || seq != uint64(history) {
		log.Fatalf("bench: checkpoint: seq %d err %v", seq, err)
	}
	if _, err := lt.Append(batch[:per]); err != nil {
		log.Fatal(err)
	}
	if err := lt.Close(); err != nil {
		log.Fatal(err)
	}
	res.RecoveryCkptBatches = 1
	res.RecoveryCheckpointNs = reopen(1, wantRows+per)
}

// verifyAppendIdentity refuses to benchmark a delta path that diverges
// from a from-scratch recomputation with the same pinned layouts.
func verifyAppendIdentity(base *dataset.Table, batch [][]dataset.Value, opts viewseeker.Options) {
	dir, err := os.MkdirTemp("", "bench-append-verify")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	lt, _, err := viewseeker.OpenLiveTable(filepath.Join(dir, "v.wal"), base, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer lt.Close()
	m, err := viewseeker.Maintain(lt, dataset.SYNQuery, opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := lt.Append(batch); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Advance(); err != nil {
		log.Fatal(err)
	}
	spaceCfg := view.SpaceConfig{BinCounts: opts.BinCounts}.Normalized()
	baseTgt, err := viewseeker.Query(base, dataset.SYNQuery)
	if err != nil {
		log.Fatal(err)
	}
	baseTgt.Name = base.Name + "_dq"
	cur := lt.Current()
	newTgt, err := viewseeker.Query(cur, dataset.SYNQuery)
	if err != nil {
		log.Fatal(err)
	}
	newTgt.Name = cur.Name + "_dq"
	cold, err := view.NewGenerator(base, baseTgt, spaceCfg)
	if err != nil {
		log.Fatal(err)
	}
	scratch, err := cold.ApplyAppend(cur, newTgt)
	if err != nil {
		log.Fatal(err)
	}
	want, err := feature.Compute(scratch, feature.StandardRegistry())
	if err != nil {
		log.Fatal(err)
	}
	got := m.Matrix()
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if math.Float64bits(got.Rows[i][j]) != math.Float64bits(want.Rows[i][j]) {
				log.Fatalf("bench: delta-maintained matrix diverges from recompute at view %d feature %d: %v vs %v",
					i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// checkAppendReport validates a tracked BENCH_append.json: it must parse
// and carry the SYN 200k entry with the acceptance-level speedup — delta
// maintenance at least 5× faster than a full rebuild for a 1% append —
// plus the bounded-recovery evidence: a post-checkpoint reopen replays a
// one-batch suffix (not the full history) and costs less than the full
// replay did.
func checkAppendReport(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("bench: -check-append: %v", err)
	}
	var rep appendReport
	if err := json.Unmarshal(data, &rep); err != nil {
		log.Fatalf("bench: -check-append %s: %v", path, err)
	}
	if rep.SchemaVersion != 2 {
		log.Fatalf("bench: -check-append %s: schema_version = %d, want 2", path, rep.SchemaVersion)
	}
	for _, r := range rep.Results {
		if r.Rows == 200000 {
			if r.WalAppendRowsSec <= 0 || r.DeltaNs <= 0 || r.RebuildNs <= 0 {
				log.Fatalf("bench: -check-append %s: SYN 200k entry has non-positive timings: %+v", path, r)
			}
			if r.Speedup < 5 {
				log.Fatalf("bench: -check-append %s: SYN 200k delta speedup %.2fx < 5x", path, r.Speedup)
			}
			if r.RecoveryFullReplayNs <= 0 || r.RecoveryCheckpointNs <= 0 {
				log.Fatalf("bench: -check-append %s: SYN 200k entry has non-positive recovery timings: %+v", path, r)
			}
			if r.RecoveryFullBatches < recoveryHistoryBatches || r.RecoveryCkptBatches > 1 {
				log.Fatalf("bench: -check-append %s: SYN 200k recovery replayed %d full / %d post-checkpoint batches — compaction did not bound the suffix",
					path, r.RecoveryFullBatches, r.RecoveryCkptBatches)
			}
			if r.RecoveryCheckpointNs >= r.RecoveryFullReplayNs {
				log.Fatalf("bench: -check-append %s: SYN 200k post-checkpoint recovery (%d ns) is not cheaper than full replay (%d ns)",
					path, r.RecoveryCheckpointNs, r.RecoveryFullReplayNs)
			}
			fmt.Fprintf(os.Stderr, "bench: -check-append %s: SYN 200k entry ok (%.1fx delta speedup, %.0f rows/s durable append, recovery %d ns from checkpoint vs %d ns full replay)\n",
				path, r.Speedup, r.WalAppendRowsSec, r.RecoveryCheckpointNs, r.RecoveryFullReplayNs)
			return
		}
	}
	log.Fatalf("bench: -check-append %s: missing SYN 200000-row entry", path)
}
