package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"viewseeker"
	"viewseeker/internal/dataset"
	"viewseeker/internal/feature"
	"viewseeker/internal/view"
)

// appendResult is one live-table datapoint: WAL-append throughput plus the
// cost of keeping the offline result current — incrementally (Advance)
// versus recomputing from scratch.
type appendResult struct {
	Dataset    string `json:"dataset"`
	Rows       int    `json:"rows"`
	AppendRows int    `json:"append_rows"`
	// WalAppendNs is one durable Append call (encode, write, fsync,
	// copy-on-append publish) for the whole batch.
	WalAppendNs      int64   `json:"wal_append_ns"`
	WalAppendRowsSec float64 `json:"wal_append_rows_per_sec"`
	// DeltaNs is Maintained.Advance: rerun the exploration query, verify
	// the prefix, extend bin indexes / stats / matrix with the suffix.
	DeltaNs int64 `json:"delta_maintain_ns"`
	// RebuildNs is what a non-incremental system pays on every append:
	// query, generator, full feature pass over the grown table.
	RebuildNs int64   `json:"full_rebuild_ns"`
	Speedup   float64 `json:"delta_vs_rebuild_speedup"`
}

// appendReport is the BENCH_append.json document.
type appendReport struct {
	SchemaVersion int            `json:"schema_version"`
	Description   string         `json:"description"`
	GoVersion     string         `json:"go_version"`
	GOMAXPROCS    int            `json:"gomaxprocs"`
	Results       []appendResult `json:"results"`
}

// benchAppend measures the live-table append path on SYN at each scale
// (1% of the rows appended in one batch) and writes the report. Before
// timing, it verifies the incrementally maintained matrix is bit-identical
// to a pinned-layout recomputation — the same identity the property tests
// pin, enforced here on the actual benchmark tables.
func benchAppend(scales []int, pct float64, out string) {
	rep := appendReport{
		SchemaVersion: 1,
		Description: "Live-table append path on SYN: durable WAL append throughput, and " +
			"incremental view maintenance (Maintained.Advance) vs a full offline " +
			"recompute after appending " + fmt.Sprintf("%g%%", pct*100) + " of the rows.",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, rows := range scales {
		fmt.Fprintf(os.Stderr, "bench: append SYN %d rows\n", rows)
		rep.Results = append(rep.Results, benchAppendScale(rows, pct))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", out)
}

func benchAppendScale(rows int, pct float64) appendResult {
	appendRows := int(float64(rows) * pct)
	if appendRows < 1 {
		appendRows = 1
	}
	full := dataset.GenerateSYN(dataset.SYNConfig{Rows: rows + appendRows, Seed: 1})
	baseIdx := make([]int, rows)
	for i := range baseIdx {
		baseIdx[i] = i
	}
	base := full.Subset(full.Name, baseIdx)
	if err := dataset.AssignRoles(base, full.Schema.Dimensions(), full.Schema.Measures()); err != nil {
		log.Fatal(err)
	}
	batch := make([][]dataset.Value, appendRows)
	for i := range batch {
		batch[i] = full.Row(rows + i)
	}
	opts := viewseeker.Options{BinCounts: []int{3, 4}}
	verifyAppendIdentity(base, batch, opts)

	res := appendResult{Dataset: "SYN", Rows: rows, AppendRows: appendRows}
	const trials = 3
	res.WalAppendNs = math.MaxInt64
	res.DeltaNs = math.MaxInt64
	res.RebuildNs = math.MaxInt64
	dir, err := os.MkdirTemp("", "bench-append")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	for trial := 0; trial < trials; trial++ {
		lt, _, err := viewseeker.OpenLiveTable(
			filepath.Join(dir, fmt.Sprintf("t%d.wal", trial)), base, 1)
		if err != nil {
			log.Fatal(err)
		}
		m, err := viewseeker.Maintain(lt, dataset.SYNQuery, opts)
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		if _, err := lt.Append(batch); err != nil {
			log.Fatal(err)
		}
		res.WalAppendNs = min64(res.WalAppendNs, time.Since(start).Nanoseconds())

		start = time.Now()
		changed, err := m.Advance()
		res.DeltaNs = min64(res.DeltaNs, time.Since(start).Nanoseconds())
		if err != nil || !changed {
			log.Fatalf("bench: Advance: changed %v err %v", changed, err)
		}
		if ext, reb := m.Stats(); ext != 1 || reb != 0 {
			log.Fatalf("bench: Advance fell back to a rebuild (extended %d rebuilt %d) — nothing incremental to measure", ext, reb)
		}

		// The non-incremental contender: full offline pass over the grown
		// table (query, generator, exact feature matrix).
		cur := lt.Current()
		start = time.Now()
		tgt, err := viewseeker.Query(cur, dataset.SYNQuery)
		if err != nil {
			log.Fatal(err)
		}
		tgt.Name = cur.Name + "_dq"
		g, err := view.NewGenerator(cur, tgt, view.SpaceConfig{BinCounts: []int{3, 4}})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := feature.Compute(g, feature.StandardRegistry()); err != nil {
			log.Fatal(err)
		}
		res.RebuildNs = min64(res.RebuildNs, time.Since(start).Nanoseconds())
		lt.Close()
	}
	if res.WalAppendNs > 0 {
		res.WalAppendRowsSec = float64(appendRows) / (float64(res.WalAppendNs) * 1e-9)
	}
	if res.DeltaNs > 0 {
		res.Speedup = round2(float64(res.RebuildNs) / float64(res.DeltaNs))
	}
	fmt.Fprintf(os.Stderr,
		"  wal_append %12d ns (%10.0f rows/s)  delta %12d ns  rebuild %12d ns  speedup %.1fx\n",
		res.WalAppendNs, res.WalAppendRowsSec, res.DeltaNs, res.RebuildNs, res.Speedup)
	return res
}

// verifyAppendIdentity refuses to benchmark a delta path that diverges
// from a from-scratch recomputation with the same pinned layouts.
func verifyAppendIdentity(base *dataset.Table, batch [][]dataset.Value, opts viewseeker.Options) {
	dir, err := os.MkdirTemp("", "bench-append-verify")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	lt, _, err := viewseeker.OpenLiveTable(filepath.Join(dir, "v.wal"), base, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer lt.Close()
	m, err := viewseeker.Maintain(lt, dataset.SYNQuery, opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := lt.Append(batch); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Advance(); err != nil {
		log.Fatal(err)
	}
	spaceCfg := view.SpaceConfig{BinCounts: opts.BinCounts}.Normalized()
	baseTgt, err := viewseeker.Query(base, dataset.SYNQuery)
	if err != nil {
		log.Fatal(err)
	}
	baseTgt.Name = base.Name + "_dq"
	cur := lt.Current()
	newTgt, err := viewseeker.Query(cur, dataset.SYNQuery)
	if err != nil {
		log.Fatal(err)
	}
	newTgt.Name = cur.Name + "_dq"
	cold, err := view.NewGenerator(base, baseTgt, spaceCfg)
	if err != nil {
		log.Fatal(err)
	}
	scratch, err := cold.ApplyAppend(cur, newTgt)
	if err != nil {
		log.Fatal(err)
	}
	want, err := feature.Compute(scratch, feature.StandardRegistry())
	if err != nil {
		log.Fatal(err)
	}
	got := m.Matrix()
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if math.Float64bits(got.Rows[i][j]) != math.Float64bits(want.Rows[i][j]) {
				log.Fatalf("bench: delta-maintained matrix diverges from recompute at view %d feature %d: %v vs %v",
					i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// checkAppendReport validates a tracked BENCH_append.json: it must parse
// and carry the SYN 200k entry with the acceptance-level speedup — delta
// maintenance at least 5× faster than a full rebuild for a 1% append.
func checkAppendReport(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("bench: -check-append: %v", err)
	}
	var rep appendReport
	if err := json.Unmarshal(data, &rep); err != nil {
		log.Fatalf("bench: -check-append %s: %v", path, err)
	}
	if rep.SchemaVersion != 1 {
		log.Fatalf("bench: -check-append %s: schema_version = %d, want 1", path, rep.SchemaVersion)
	}
	for _, r := range rep.Results {
		if r.Rows == 200000 {
			if r.WalAppendRowsSec <= 0 || r.DeltaNs <= 0 || r.RebuildNs <= 0 {
				log.Fatalf("bench: -check-append %s: SYN 200k entry has non-positive timings: %+v", path, r)
			}
			if r.Speedup < 5 {
				log.Fatalf("bench: -check-append %s: SYN 200k delta speedup %.2fx < 5x", path, r.Speedup)
			}
			fmt.Fprintf(os.Stderr, "bench: -check-append %s: SYN 200k entry ok (%.1fx delta speedup, %.0f rows/s durable append)\n",
				path, r.Speedup, r.WalAppendRowsSec)
			return
		}
	}
	log.Fatalf("bench: -check-append %s: missing SYN 200000-row entry", path)
}
