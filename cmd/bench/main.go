// Command bench runs the offline-phase scan kernels on the SYN testbed at
// two scales and writes BENCH_offline.json: the tracked record of the
// kernels' ns/op, allocs/op and rows/sec, alongside the same scans run
// through the retained row-at-a-time reference implementation so the
// columnar speedup is measured, not asserted. Before timing anything it
// verifies the flat and reference kernels produce bit-identical statistics
// on the benchmark tables.
//
// With -obs the report additionally carries an observability section: a
// full offline phase (cold, then warm from the cache) is run under an
// instrumented context and the registry is read back for worker occupancy
// and cache hit rate. The kernel benchmarks themselves always run without
// an observability context, so -obs never perturbs the tracked numbers;
// without the flag the section is omitted and the document is unchanged.
//
// Usage:
//
//	go run ./cmd/bench [-rows 50000,200000] [-alpha 0.1] [-obs] [-o BENCH_offline.json]
//	go run ./cmd/bench -check BENCH_offline.json
//	go run ./cmd/bench -online -rows 200000,1000000
//	go run ./cmd/bench -check-online BENCH_online.json
//
// -check validates the tracked document instead of benchmarking: CI runs
// the kernels at smoke scale but asserts the locally produced SYN 1M-row
// warm entry is present and well-formed.
//
// -online benchmarks the online phase instead: full feedback iterations
// (uncertainty selection, budgeted incremental refinement, estimator
// refit) driven by a simulated user over an α-sampled matrix, written to
// BENCH_online.json. Before timing it verifies the layout-block feature
// kernels against a per-pair oracle registry and the incremental
// sufficient-statistics refit against a from-scratch fit, both bit for
// bit. -check-online asserts the tracked SYN 1M entry keeps the slowest
// iteration under the one-second interactivity requirement.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"viewseeker"
	"viewseeker/internal/dataset"
	"viewseeker/internal/obs"
	"viewseeker/internal/store"
	"viewseeker/internal/view"
)

// result is one benchmark datapoint.
type result struct {
	Name        string  `json:"name"`
	Dataset     string  `json:"dataset"`
	Rows        int     `json:"rows"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec"`
}

// report is the BENCH_offline.json document.
type report struct {
	SchemaVersion int    `json:"schema_version"`
	Description   string `json:"description"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	// Baseline pins the pre-kernel numbers of the two acceptance
	// benchmarks (internal/view, 100k-row random table), measured on the
	// row-at-a-time scan path before the columnar kernels landed.
	Baseline map[string]int64   `json:"baseline_pre_kernels_ns_per_op"`
	Results  []result           `json:"results"`
	Speedups map[string]float64 `json:"speedups"`
	// Obs is the -obs observability section; omitted without the flag so
	// the tracked document's schema is unchanged by default.
	Obs *obsReport `json:"obs,omitempty"`
}

// obsReport is what -obs reads back from the metrics registry after an
// instrumented cold+warm offline phase.
type obsReport struct {
	Rows    int `json:"rows"`
	Workers int `json:"workers"`
	// WallSeconds covers both sessions: the cold offline phase plus the
	// warm cache-served one.
	WallSeconds float64 `json:"wall_seconds"`
	// BusySeconds is the sum of per-item worker time
	// (viewseeker_par_item_seconds_sum): total time workers spent inside
	// feature jobs rather than waiting.
	BusySeconds float64 `json:"par_busy_seconds"`
	// Occupancy is BusySeconds / (cold-phase wall time × workers) — the
	// fraction of the worker pool kept busy by the offline fan-out.
	Occupancy      float64 `json:"worker_occupancy"`
	ItemsScheduled int64   `json:"par_items_scheduled"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	WarmSessions   int64   `json:"sessions_warm"`
	ColdSessions   int64   `json:"sessions_cold"`
}

func main() {
	rowsFlag := flag.String("rows", "50000,200000", "comma-separated SYN scales to benchmark")
	alpha := flag.Float64("alpha", 0.1, "sampling ratio for the α-pass benchmarks")
	out := flag.String("o", "BENCH_offline.json", "output path")
	obsMode := flag.Bool("obs", false, "run an instrumented cold+warm offline phase and report worker occupancy and cache hit rate from the metrics registry")
	check := flag.String("check", "", "validate an existing report instead of benchmarking: require the tracked SYN 1M-row warm entry")
	appendMode := flag.Bool("append", false, "benchmark the live-table append path instead of the scan kernels: durable WAL append throughput and incremental maintenance vs full rebuild, written to -o (default BENCH_append.json)")
	appendPct := flag.Float64("append-pct", 0.01, "fraction of the rows appended in one batch in -append mode")
	checkAppend := flag.String("check-append", "", "validate an existing BENCH_append.json: require the SYN 200k entry with a >= 5x delta-vs-rebuild speedup")
	onlineMode := flag.Bool("online", false, "benchmark the online phase instead of the scan kernels: full feedback iterations (selection, refinement, refit) driven by a simulated user, written to -o (default BENCH_online.json)")
	checkOnline := flag.String("check-online", "", "validate an existing BENCH_online.json: require the SYN 1M entry with every iteration under one second")
	serveMode := flag.Bool("serve", false, "benchmark the memory-budgeted serving path: a synthetic session population against a budget sized for a fraction of it (forced eviction + rehydration), written to -o (default BENCH_serve.json)")
	serveSessions := flag.Int("serve-sessions", 2000, "session population for -serve")
	serveConcurrency := flag.Int("serve-concurrency", 16, "sessions in flight at once for -serve")
	serveFeedback := flag.Int("serve-feedback", 5, "labelling steps per session for -serve")
	serveFraction := flag.Float64("serve-budget-fraction", 0.25, "session budget as a fraction of the whole population's resident cost for -serve")
	checkServe := flag.String("check-serve", "", "validate an existing BENCH_serve.json: sessions completed, no 5xx, eviction/rehydration exercised, resident bytes under budget, bit-identity held, feedback p99 under 1s")
	flag.Parse()

	if *check != "" {
		checkReport(*check)
		return
	}
	if *checkAppend != "" {
		checkAppendReport(*checkAppend)
		return
	}
	if *checkOnline != "" {
		checkOnlineReport(*checkOnline)
		return
	}
	if *checkServe != "" {
		checkServeReport(*checkServe)
		return
	}
	if *serveMode {
		out := *out
		if out == "BENCH_offline.json" {
			out = "BENCH_serve.json"
		}
		benchServe(*serveSessions, *serveConcurrency, *serveFeedback, *serveFraction, out)
		return
	}

	var scales []int
	for _, s := range strings.Split(*rowsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("bench: bad -rows entry %q", s)
		}
		scales = append(scales, n)
	}

	if *appendMode {
		out := *out
		if out == "BENCH_offline.json" {
			out = "BENCH_append.json"
		}
		benchAppend(scales, *appendPct, out)
		return
	}
	if *onlineMode {
		out := *out
		if out == "BENCH_offline.json" {
			out = "BENCH_online.json"
		}
		benchOnline(scales, *alpha, out)
		return
	}

	rep := report{
		SchemaVersion: 1,
		Description: "Offline-phase scan kernels on SYN: columnar (decode-once " +
			"columns, bitmap nulls, flat accumulators) vs the retained " +
			"row-at-a-time reference path.",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Baseline: map[string]int64{
			"BenchmarkCollectStatsIndexed": 2523282,
			"BenchmarkFullViewSpacePairs":  1800679,
		},
		Speedups: map[string]float64{},
	}

	for _, rows := range scales {
		fmt.Fprintf(os.Stderr, "bench: SYN %d rows\n", rows)
		rep.Results = append(rep.Results, benchScale(&rep, rows, *alpha)...)
	}
	if *obsMode {
		rep.Obs = observeOffline(scales[len(scales)-1], *alpha)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)
}

// benchScale runs every kernel benchmark at one SYN scale and records the
// flat-vs-reference speedups into the report.
func benchScale(rep *report, rows int, alpha float64) []result {
	ref := dataset.GenerateSYN(dataset.SYNConfig{Rows: rows, Seed: 1})
	measures := ref.Schema.Measures()
	layout, err := view.ComputeLayout(ref, "d1", 4)
	if err != nil {
		log.Fatal(err)
	}
	bins, err := view.BinIndex(ref, layout)
	if err != nil {
		log.Fatal(err)
	}
	sample := ref.SampleRows(alpha)
	verifyKernels(ref, layout, measures, sample, bins)

	var sel []int
	for i := 0; i < rows; i += 7 {
		sel = append(sel, i)
	}
	tgt := ref.Subset("tgt", sel)

	mark := func(name string, scanned int, fn func(b *testing.B)) result {
		r := testing.Benchmark(fn)
		res := result{
			Name: name, Dataset: "SYN", Rows: rows,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if res.NsPerOp > 0 {
			res.RowsPerSec = float64(scanned) / (float64(res.NsPerOp) * 1e-9)
		}
		fmt.Fprintf(os.Stderr, "  %-28s %12d ns/op %14.0f rows/s\n", name, res.NsPerOp, res.RowsPerSec)
		return res
	}

	out := []result{
		mark("bin_index", rows, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := view.BinIndex(ref, layout); err != nil {
					b.Fatal(err)
				}
			}
		}),
		mark("collect_stats_indexed", rows, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := view.CollectStatsIndexed(ref, layout, measures, bins); err != nil {
					b.Fatal(err)
				}
			}
		}),
		mark("collect_stats_reference", rows, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := view.CollectStatsReference(ref, layout, measures, nil); err != nil {
					b.Fatal(err)
				}
			}
		}),
		mark("sampled_indexed_gather", len(sample), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := view.CollectStatsSampled(ref, layout, measures, sample, bins); err != nil {
					b.Fatal(err)
				}
			}
		}),
		mark("sampled_reference_rebin", len(sample), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := view.CollectStatsReference(ref, layout, measures, sample); err != nil {
					b.Fatal(err)
				}
			}
		}),
		mark("full_view_space_pairs", rows, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, err := view.NewGenerator(ref, tgt, view.SpaceConfig{BinCounts: []int{3, 4}})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, s := range g.Specs() {
					if _, err := g.Pair(s); err != nil {
						b.Fatal(err)
					}
				}
			}
		}),
		// The offline warm pass: precompute stats for every layout on both
		// tables. Exercises the shared bin-index path (one scan per
		// dimension fills every bin count's index at once).
		mark("full_view_space_warm", rows, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, err := view.NewGenerator(ref, tgt, view.SpaceConfig{BinCounts: []int{3, 4}})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := g.Warm(runtime.GOMAXPROCS(0)); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}

	byName := map[string]int64{}
	for _, r := range out {
		byName[r.Name] = r.NsPerOp
	}
	if ref, flat := byName["collect_stats_reference"], byName["collect_stats_indexed"]; flat > 0 {
		rep.Speedups[fmt.Sprintf("collect_stats_indexed_vs_reference_%d", rows)] =
			round2(float64(ref) / float64(flat))
	}
	if ref, flat := byName["sampled_reference_rebin"], byName["sampled_indexed_gather"]; flat > 0 {
		rep.Speedups[fmt.Sprintf("sampled_gather_vs_rebin_%d", rows)] =
			round2(float64(ref) / float64(flat))
	}
	return out
}

// verifyKernels refuses to benchmark kernels that disagree with the
// reference implementation.
func verifyKernels(t *dataset.Table, layout *view.BinLayout, measures []string, sample []int, bins []int32) {
	want, err := view.CollectStatsReference(t, layout, measures, nil)
	if err != nil {
		log.Fatal(err)
	}
	got, err := view.CollectStatsIndexed(t, layout, measures, bins)
	if err != nil {
		log.Fatal(err)
	}
	mustEqual(want, got, "indexed")
	wantS, err := view.CollectStatsReference(t, layout, measures, sample)
	if err != nil {
		log.Fatal(err)
	}
	gotS, err := view.CollectStatsSampled(t, layout, measures, sample, bins)
	if err != nil {
		log.Fatal(err)
	}
	mustEqual(wantS, gotS, "sampled")
}

func mustEqual(want, got *view.Stats, kernel string) {
	for m := range want.Measures {
		for b := 0; b < want.Layout.NumBins(); b++ {
			i := want.Index(m, b)
			if want.Counts[i] != got.Counts[i] || want.Sums[i] != got.Sums[i] ||
				want.SumSqs[i] != got.SumSqs[i] || want.Mins[i] != got.Mins[i] ||
				want.Maxs[i] != got.Maxs[i] {
				log.Fatalf("bench: %s kernel diverges from reference at measure %d bin %d", kernel, m, b)
			}
		}
	}
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }

// checkReport validates a tracked report document without benchmarking:
// it must parse, and it must carry the SYN 1M-row full_view_space_warm
// entry with a positive timing — the scale point CI cannot reproduce but
// must not lose. Exits non-zero on any violation.
func checkReport(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("bench: -check: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		log.Fatalf("bench: -check %s: %v", path, err)
	}
	if rep.SchemaVersion != 1 {
		log.Fatalf("bench: -check %s: schema_version = %d, want 1", path, rep.SchemaVersion)
	}
	for _, r := range rep.Results {
		if r.Name == "full_view_space_warm" && r.Rows == 1000000 {
			if r.NsPerOp <= 0 {
				log.Fatalf("bench: -check %s: SYN 1M warm entry has ns_per_op = %d", path, r.NsPerOp)
			}
			fmt.Fprintf(os.Stderr, "bench: -check %s: SYN 1M warm entry ok (%d ns/op)\n", path, r.NsPerOp)
			return
		}
	}
	log.Fatalf("bench: -check %s: missing full_view_space_warm result at 1000000 rows", path)
}

// observeOffline runs a cold offline phase and then a warm one against the
// same shared cache, both under an instrumented context, and reads the
// registry back. The occupancy it reports is the offline fan-out's actual
// worker utilisation (busy seconds over wall seconds times pool size), and
// the cache numbers pin the warm path: one miss from the cold session, one
// hit from the warm one.
func observeOffline(rows int, alpha float64) *obsReport {
	reg := obs.NewRegistry()
	ctx := obs.NewContext(context.Background(), reg, nil)
	table := dataset.GenerateSYN(dataset.SYNConfig{Rows: rows, Seed: 1})
	cache := store.NewCache(0)
	cache.Instrument(reg)
	workers := runtime.GOMAXPROCS(0)
	opts := viewseeker.Options{Alpha: alpha, Cache: cache, Workers: workers}

	coldStart := time.Now()
	if _, err := viewseeker.NewCtx(ctx, table, dataset.SYNQuery, opts); err != nil {
		log.Fatal(err)
	}
	coldWall := time.Since(coldStart)
	warmStart := time.Now()
	if _, err := viewseeker.NewCtx(ctx, table, dataset.SYNQuery, opts); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(warmStart) + coldWall

	snap := reg.Snapshot()
	o := &obsReport{
		Rows:           rows,
		Workers:        workers,
		WallSeconds:    wall.Seconds(),
		BusySeconds:    snap["viewseeker_par_item_seconds_sum"],
		ItemsScheduled: int64(snap["viewseeker_par_items_scheduled_total"]),
		CacheHits:      int64(snap["viewseeker_store_cache_hits_total"]),
		CacheMisses:    int64(snap["viewseeker_store_cache_misses_total"]),
		WarmSessions:   int64(snap[`viewseeker_offline_sessions_total{result="warm"}`]),
		ColdSessions:   int64(snap[`viewseeker_offline_sessions_total{result="cold"}`]),
	}
	if denom := coldWall.Seconds() * float64(workers); denom > 0 {
		o.Occupancy = o.BusySeconds / denom
	}
	if total := o.CacheHits + o.CacheMisses; total > 0 {
		o.CacheHitRate = float64(o.CacheHits) / float64(total)
	}
	fmt.Fprintf(os.Stderr,
		"bench: obs SYN %d rows: occupancy %.2f (%d workers, %.2fs busy / %.2fs wall), cache hit rate %.2f (%d/%d)\n",
		rows, o.Occupancy, workers, o.BusySeconds, wall.Seconds(), o.CacheHitRate,
		o.CacheHits, o.CacheHits+o.CacheMisses)
	return o
}
