// Command bench runs the offline-phase scan kernels on the SYN testbed at
// two scales and writes BENCH_offline.json: the tracked record of the
// kernels' ns/op, allocs/op and rows/sec, alongside the same scans run
// through the retained row-at-a-time reference implementation so the
// columnar speedup is measured, not asserted. Before timing anything it
// verifies the flat and reference kernels produce bit-identical statistics
// on the benchmark tables.
//
// Usage:
//
//	go run ./cmd/bench [-rows 50000,200000] [-alpha 0.1] [-o BENCH_offline.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/view"
)

// result is one benchmark datapoint.
type result struct {
	Name        string  `json:"name"`
	Dataset     string  `json:"dataset"`
	Rows        int     `json:"rows"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec"`
}

// report is the BENCH_offline.json document.
type report struct {
	SchemaVersion int    `json:"schema_version"`
	Description   string `json:"description"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	// Baseline pins the pre-kernel numbers of the two acceptance
	// benchmarks (internal/view, 100k-row random table), measured on the
	// row-at-a-time scan path before the columnar kernels landed.
	Baseline map[string]int64   `json:"baseline_pre_kernels_ns_per_op"`
	Results  []result           `json:"results"`
	Speedups map[string]float64 `json:"speedups"`
}

func main() {
	rowsFlag := flag.String("rows", "50000,200000", "comma-separated SYN scales to benchmark")
	alpha := flag.Float64("alpha", 0.1, "sampling ratio for the α-pass benchmarks")
	out := flag.String("o", "BENCH_offline.json", "output path")
	flag.Parse()

	var scales []int
	for _, s := range strings.Split(*rowsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("bench: bad -rows entry %q", s)
		}
		scales = append(scales, n)
	}

	rep := report{
		SchemaVersion: 1,
		Description: "Offline-phase scan kernels on SYN: columnar (decode-once " +
			"columns, bitmap nulls, flat accumulators) vs the retained " +
			"row-at-a-time reference path.",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Baseline: map[string]int64{
			"BenchmarkCollectStatsIndexed": 2523282,
			"BenchmarkFullViewSpacePairs":  1800679,
		},
		Speedups: map[string]float64{},
	}

	for _, rows := range scales {
		fmt.Fprintf(os.Stderr, "bench: SYN %d rows\n", rows)
		rep.Results = append(rep.Results, benchScale(&rep, rows, *alpha)...)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)
}

// benchScale runs every kernel benchmark at one SYN scale and records the
// flat-vs-reference speedups into the report.
func benchScale(rep *report, rows int, alpha float64) []result {
	ref := dataset.GenerateSYN(dataset.SYNConfig{Rows: rows, Seed: 1})
	measures := ref.Schema.Measures()
	layout, err := view.ComputeLayout(ref, "d1", 4)
	if err != nil {
		log.Fatal(err)
	}
	bins, err := view.BinIndex(ref, layout)
	if err != nil {
		log.Fatal(err)
	}
	sample := ref.SampleRows(alpha)
	verifyKernels(ref, layout, measures, sample, bins)

	var sel []int
	for i := 0; i < rows; i += 7 {
		sel = append(sel, i)
	}
	tgt := ref.Subset("tgt", sel)

	mark := func(name string, scanned int, fn func(b *testing.B)) result {
		r := testing.Benchmark(fn)
		res := result{
			Name: name, Dataset: "SYN", Rows: rows,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if res.NsPerOp > 0 {
			res.RowsPerSec = float64(scanned) / (float64(res.NsPerOp) * 1e-9)
		}
		fmt.Fprintf(os.Stderr, "  %-28s %12d ns/op %14.0f rows/s\n", name, res.NsPerOp, res.RowsPerSec)
		return res
	}

	out := []result{
		mark("bin_index", rows, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := view.BinIndex(ref, layout); err != nil {
					b.Fatal(err)
				}
			}
		}),
		mark("collect_stats_indexed", rows, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := view.CollectStatsIndexed(ref, layout, measures, bins); err != nil {
					b.Fatal(err)
				}
			}
		}),
		mark("collect_stats_reference", rows, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := view.CollectStatsReference(ref, layout, measures, nil); err != nil {
					b.Fatal(err)
				}
			}
		}),
		mark("sampled_indexed_gather", len(sample), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := view.CollectStatsSampled(ref, layout, measures, sample, bins); err != nil {
					b.Fatal(err)
				}
			}
		}),
		mark("sampled_reference_rebin", len(sample), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := view.CollectStatsReference(ref, layout, measures, sample); err != nil {
					b.Fatal(err)
				}
			}
		}),
		mark("full_view_space_pairs", rows, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, err := view.NewGenerator(ref, tgt, view.SpaceConfig{BinCounts: []int{3, 4}})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, s := range g.Specs() {
					if _, err := g.Pair(s); err != nil {
						b.Fatal(err)
					}
				}
			}
		}),
	}

	byName := map[string]int64{}
	for _, r := range out {
		byName[r.Name] = r.NsPerOp
	}
	if ref, flat := byName["collect_stats_reference"], byName["collect_stats_indexed"]; flat > 0 {
		rep.Speedups[fmt.Sprintf("collect_stats_indexed_vs_reference_%d", rows)] =
			round2(float64(ref) / float64(flat))
	}
	if ref, flat := byName["sampled_reference_rebin"], byName["sampled_indexed_gather"]; flat > 0 {
		rep.Speedups[fmt.Sprintf("sampled_gather_vs_rebin_%d", rows)] =
			round2(float64(ref) / float64(flat))
	}
	return out
}

// verifyKernels refuses to benchmark kernels that disagree with the
// reference implementation.
func verifyKernels(t *dataset.Table, layout *view.BinLayout, measures []string, sample []int, bins []int32) {
	want, err := view.CollectStatsReference(t, layout, measures, nil)
	if err != nil {
		log.Fatal(err)
	}
	got, err := view.CollectStatsIndexed(t, layout, measures, bins)
	if err != nil {
		log.Fatal(err)
	}
	mustEqual(want, got, "indexed")
	wantS, err := view.CollectStatsReference(t, layout, measures, sample)
	if err != nil {
		log.Fatal(err)
	}
	gotS, err := view.CollectStatsSampled(t, layout, measures, sample, bins)
	if err != nil {
		log.Fatal(err)
	}
	mustEqual(wantS, gotS, "sampled")
}

func mustEqual(want, got *view.Stats, kernel string) {
	for m := range want.Measures {
		for b := 0; b < want.Layout.NumBins(); b++ {
			i := want.Index(m, b)
			if want.Counts[i] != got.Counts[i] || want.Sums[i] != got.Sums[i] ||
				want.SumSqs[i] != got.SumSqs[i] || want.Mins[i] != got.Mins[i] ||
				want.Maxs[i] != got.Maxs[i] {
				log.Fatalf("bench: %s kernel diverges from reference at measure %d bin %d", kernel, m, b)
			}
		}
	}
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }
