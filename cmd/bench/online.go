package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"time"

	"viewseeker/internal/core"
	"viewseeker/internal/exp"
	"viewseeker/internal/feature"
	"viewseeker/internal/metric"
	"viewseeker/internal/ml"
	"viewseeker/internal/obs"
	"viewseeker/internal/sim"
	"viewseeker/internal/view"
)

// onlineResult is one online-phase datapoint: the latency of full feedback
// iterations (selection, label, budgeted refinement, estimator refit)
// driven by a simulated user over an α-sampled matrix — the interactive
// loop the paper requires to stay under a second per iteration.
type onlineResult struct {
	Dataset    string  `json:"dataset"`
	Rows       int     `json:"rows"`
	Views      int     `json:"views"`
	Alpha      float64 `json:"alpha"`
	Iterations int     `json:"iterations"`
	// MaxIterNs is the slowest single iteration (min over trials): the
	// number the < 1 s interactivity requirement constrains.
	MaxIterNs  int64 `json:"max_iteration_ns"`
	MeanIterNs int64 `json:"mean_iteration_ns"`
	// Estimator refit path taken, from the metrics registry: rebuilds
	// happen while refinement still mutates the matrix, incremental
	// rank-1 refits once it settles.
	RefitRebuilds    int64 `json:"refit_rebuilds"`
	RefitIncremental int64 `json:"refit_incremental"`
	RefinedRows      int64 `json:"refined_rows"`
}

// onlineReport is the BENCH_online.json document.
type onlineReport struct {
	SchemaVersion int            `json:"schema_version"`
	Description   string         `json:"description"`
	GoVersion     string         `json:"go_version"`
	GOMAXPROCS    int            `json:"gomaxprocs"`
	Results       []onlineResult `json:"results"`
}

// benchOnline measures the online phase on SYN at each scale. Before any
// timing it verifies the two identities the fast paths claim: the
// layout-block feature kernels against a per-pair oracle registry, and the
// incremental sufficient-statistics refit against a from-scratch fit —
// both bit for bit, on the actual benchmark testbed.
func benchOnline(scales []int, alpha float64, out string) {
	rep := onlineReport{
		SchemaVersion: 1,
		Description: "Online phase on SYN: full feedback iterations (uncertainty " +
			"selection, budgeted incremental refinement, sufficient-statistics " +
			"estimator refit) over an α-sampled feature matrix, driven by a " +
			"simulated user. Interactivity requires the slowest iteration " +
			"under one second.",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, rows := range scales {
		fmt.Fprintf(os.Stderr, "bench: online SYN %d rows\n", rows)
		rep.Results = append(rep.Results, benchOnlineScale(rows, alpha))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", out)
}

// onlineIters is how many feedback iterations each trial drives — enough
// for the session to leave cold start, exhaust the refinement queue and
// settle into incremental refits.
const onlineIters = 20

func benchOnlineScale(rows int, alpha float64) onlineResult {
	tb, err := exp.NewSYNTestbed(rows, 1)
	if err != nil {
		log.Fatal(err)
	}
	verifyBlockKernels(tb)
	user, err := sim.NewUser(sim.IdealFunctions()[3], tb.Exact) // u*#4: 0.5·EMD + 0.5·KL
	if err != nil {
		log.Fatal(err)
	}
	verifyOnlineRefit(tb, user, alpha)

	res := onlineResult{Dataset: "SYN", Rows: rows, Views: tb.Exact.Len(), Alpha: alpha}
	res.MaxIterNs = math.MaxInt64
	res.MeanIterNs = math.MaxInt64
	const trials = 3
	for trial := 0; trial < trials; trial++ {
		gen, err := tb.NewGeneratorLike()
		if err != nil {
			log.Fatal(err)
		}
		partial, err := feature.ComputePartial(gen, feature.StandardRegistry(), alpha)
		if err != nil {
			log.Fatal(err)
		}
		s, err := core.NewSeeker(partial, core.Config{K: 10, RefineBudget: time.Second}, true)
		if err != nil {
			log.Fatal(err)
		}
		reg := obs.NewRegistry()
		ctx := obs.NewContext(context.Background(), reg, nil)
		var maxNs, sumNs int64
		iters := 0
		for i := 0; i < onlineIters; i++ {
			start := time.Now()
			next, err := s.NextViewsCtx(ctx)
			if err != nil {
				log.Fatal(err)
			}
			if len(next) == 0 {
				break
			}
			if err := s.FeedbackCtx(ctx, next[0], user.Label(next[0])); err != nil {
				log.Fatal(err)
			}
			ns := time.Since(start).Nanoseconds()
			sumNs += ns
			if ns > maxNs {
				maxNs = ns
			}
			iters++
		}
		res.Iterations = iters
		res.MaxIterNs = min64(res.MaxIterNs, maxNs)
		res.MeanIterNs = min64(res.MeanIterNs, sumNs/int64(iters))
		snap := reg.Snapshot()
		res.RefitRebuilds = int64(snap["viewseeker_refit_rebuilds_total"])
		res.RefitIncremental = int64(snap["viewseeker_refit_incremental_total"])
		res.RefinedRows = int64(snap["viewseeker_optimize_refined_rows_total"])
	}
	fmt.Fprintf(os.Stderr,
		"  %d views, %d iters: max %12d ns  mean %12d ns  (refits: %d rebuilt, %d incremental; %d rows refined)\n",
		res.Views, res.Iterations, res.MaxIterNs, res.MeanIterNs,
		res.RefitRebuilds, res.RefitIncremental, res.RefinedRows)
	return res
}

// perPairOracle rebuilds the standard eight features through the generic
// per-pair path: Add-built registries never carry the standard prefix, so
// every value goes through Registry.Vector and the scalar metric kernels —
// the oracle the layout-block fast path must match bit for bit.
func perPairOracle() *feature.Registry {
	r := feature.NewRegistry()
	dist := func(f func(p, q []float64) (float64, error)) func(*view.Pair) (float64, error) {
		return func(p *view.Pair) (float64, error) {
			return f(p.Target.Distribution(), p.Reference.Distribution())
		}
	}
	for _, f := range []feature.Feature{
		{Name: feature.KL, Compute: dist(metric.KLDivergence)},
		{Name: feature.EMD, Compute: dist(metric.EMD)},
		{Name: feature.L1, Compute: dist(metric.L1)},
		{Name: feature.L2, Compute: dist(metric.L2)},
		{Name: feature.MaxDiff, Compute: dist(metric.MaxDiff)},
		{Name: feature.Usability, Compute: func(p *view.Pair) (float64, error) {
			return metric.Usability(p.Target.Bins())
		}},
		{Name: feature.Accuracy, Compute: func(p *view.Pair) (float64, error) {
			return metric.Accuracy(p.Target.Counts, p.Target.Sums, p.Target.SumSqs, p.Target.Shift)
		}},
		{Name: feature.PValue, Compute: func(p *view.Pair) (float64, error) {
			return metric.PValueScore(p.Target.Counts, p.Reference.Distribution())
		}},
	} {
		if err := r.Add(f); err != nil {
			log.Fatal(err)
		}
	}
	return r
}

// verifyBlockKernels refuses to benchmark a block-filled matrix that
// diverges from the per-pair oracle on the testbed's own view space.
func verifyBlockKernels(tb *exp.Testbed) {
	oracle, err := feature.Compute(tb.Gen, perPairOracle())
	if err != nil {
		log.Fatal(err)
	}
	for i := range tb.Exact.Rows {
		for j := range tb.Exact.Rows[i] {
			if math.Float64bits(tb.Exact.Rows[i][j]) != math.Float64bits(oracle.Rows[i][j]) {
				log.Fatalf("bench: block kernel diverges from per-pair oracle at view %d feature %d: %v vs %v",
					i, j, tb.Exact.Rows[i][j], oracle.Rows[i][j])
			}
		}
	}
}

// verifyOnlineRefit drives a short refinement session and checks after
// every label that the seeker's incrementally maintained estimator equals
// a from-scratch sufficient-statistics fit over the same labels and the
// matrix as it stands.
func verifyOnlineRefit(tb *exp.Testbed, user *sim.User, alpha float64) {
	gen, err := tb.NewGeneratorLike()
	if err != nil {
		log.Fatal(err)
	}
	partial, err := feature.ComputePartial(gen, feature.StandardRegistry(), alpha)
	if err != nil {
		log.Fatal(err)
	}
	const ridge = 1e-4 // core.Config default, pinned so the reference fit matches
	s, err := core.NewSeeker(partial, core.Config{K: 10, Ridge: ridge, RefineBudget: time.Second}, true)
	if err != nil {
		log.Fatal(err)
	}
	k := len(partial.Rows[0])
	z := make([]float64, k)
	for i := 0; i < 8; i++ {
		next, err := s.NextViews()
		if err != nil {
			log.Fatal(err)
		}
		if len(next) == 0 {
			break
		}
		if err := s.Feedback(next[0], user.Label(next[0])); err != nil {
			log.Fatal(err)
		}
		scaler, err := ml.FitScaler(partial.Rows)
		if err != nil {
			log.Fatal(err)
		}
		suff := ml.NewSuffStats(k)
		idxs, labels := s.Labels()
		for j, vi := range idxs {
			scaler.TransformInto(partial.Rows[vi], z)
			if err := suff.Add(z, labels[j]); err != nil {
				log.Fatal(err)
			}
		}
		ref := ml.NewLinearRegression(ridge)
		ref.ExternalScaler = scaler
		if err := ref.FitSufficient(suff); err != nil {
			log.Fatal(err)
		}
		wantW, wantB := ref.Weights()
		gotW, gotB := s.Weights()
		if math.Float64bits(gotB) != math.Float64bits(wantB) {
			log.Fatalf("bench: incremental refit diverges from from-scratch after label %d: bias %v vs %v", i, gotB, wantB)
		}
		for j := range wantW {
			if math.Float64bits(gotW[j]) != math.Float64bits(wantW[j]) {
				log.Fatalf("bench: incremental refit diverges from from-scratch after label %d: weight %d %v vs %v",
					i, j, gotW[j], wantW[j])
			}
		}
	}
}

// checkOnlineReport validates a tracked BENCH_online.json: it must parse
// and carry the SYN 1M entry with every iteration under the one-second
// interactivity requirement.
func checkOnlineReport(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("bench: -check-online: %v", err)
	}
	var rep onlineReport
	if err := json.Unmarshal(data, &rep); err != nil {
		log.Fatalf("bench: -check-online %s: %v", path, err)
	}
	if rep.SchemaVersion != 1 {
		log.Fatalf("bench: -check-online %s: schema_version = %d, want 1", path, rep.SchemaVersion)
	}
	for _, r := range rep.Results {
		if r.Rows == 1000000 {
			if r.Iterations < 10 || r.MaxIterNs <= 0 || r.MeanIterNs <= 0 {
				log.Fatalf("bench: -check-online %s: SYN 1M entry is degenerate: %+v", path, r)
			}
			if r.MaxIterNs >= int64(time.Second) {
				log.Fatalf("bench: -check-online %s: SYN 1M slowest iteration %.3fs breaks the 1s interactivity requirement",
					path, float64(r.MaxIterNs)*1e-9)
			}
			fmt.Fprintf(os.Stderr, "bench: -check-online %s: SYN 1M entry ok (max %.1fms, mean %.1fms per iteration)\n",
				path, float64(r.MaxIterNs)*1e-6, float64(r.MeanIterNs)*1e-6)
			return
		}
	}
	log.Fatalf("bench: -check-online %s: missing SYN 1000000-row entry", path)
}
