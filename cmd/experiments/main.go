// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 5): Table 1 (testbed), Table 2 (ideal utility
// functions), Figures 3–4 (labels to 100% precision on DIAB and SYN),
// Figure 5 (single-feature baselines) and Figures 6–7 (the optimisation
// study). Row counts default to the paper's scales; -diab-rows/-syn-rows
// shrink them for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"viewseeker/internal/exp"
	"viewseeker/internal/sim"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiments to run: all, or comma list of table1,table2,fig3,fig4,fig5,fig6,fig7")
		diabRows = flag.Int("diab-rows", 100_000, "DIAB record count (Table 1: 100000)")
		synRows  = flag.Int("syn-rows", 1_000_000, "SYN record count (Table 1: 1000000)")
		seed     = flag.Int64("seed", 1, "generator seed")
		alpha    = flag.Float64("alpha", 0.1, "optimisation partial-data ratio (Table 1: 10%)")
		budget   = flag.Duration("tl", time.Second, "per-iteration refinement budget (Table 1: 1s)")
		ks       = flag.String("ks", "5,10,15,20,25,30", "comma-separated k values")
		outDir   = flag.String("out", "", "also write machine-readable CSV series into this directory")
	)
	flag.Parse()
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	want := map[string]bool{}
	for _, r := range strings.Split(*run, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]
	kList, err := parseKs(*ks)
	if err != nil {
		fatal(err)
	}

	needDIAB := all || want["table1"] || want["fig3"] || want["fig5"] || want["fig6"] || want["fig7"]
	needSYN := all || want["table1"] || want["fig4"]

	var diab, syn *exp.Testbed
	if needDIAB {
		fmt.Fprintf(os.Stderr, "building DIAB testbed (%d rows)...\n", *diabRows)
		diab, err = exp.NewDIABTestbed(*diabRows, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "DIAB offline feature pass: %v\n", diab.ExactBuild)
	}
	if needSYN {
		fmt.Fprintf(os.Stderr, "building SYN testbed (%d rows)...\n", *synRows)
		syn, err = exp.NewSYNTestbed(*synRows, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "SYN offline feature pass: %v\n", syn.ExactBuild)
	}

	if all || want["table1"] {
		if err := exp.ReportTable1(os.Stdout, exp.Table1(diab, syn)); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if all || want["table2"] {
		if err := exp.ReportTable2(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if all || want["fig3"] {
		if err := effortFigure("Figure 3", diab, kList, csvPath(*outDir, "fig3.csv")); err != nil {
			fatal(err)
		}
	}
	if all || want["fig4"] {
		if err := effortFigure("Figure 4", syn, kList, csvPath(*outDir, "fig4.csv")); err != nil {
			fatal(err)
		}
	}
	if all || want["fig5"] {
		fn := sim.IdealFunctions()[10] // u* #11
		results, err := exp.BaselineComparison(diab, fn, 10)
		if err != nil {
			fatal(err)
		}
		if err := exp.ReportBaselines(os.Stdout, fn.Name(), results); err != nil {
			fatal(err)
		}
		if p := csvPath(*outDir, "fig5.csv"); p != "" {
			if err := exp.WriteBaselinesCSV(p, fn.Name(), results); err != nil {
				fatal(err)
			}
		}
		fmt.Println()
	}
	if all || want["fig6"] || want["fig7"] {
		for _, components := range []int{1, 2, 3} {
			fmt.Fprintf(os.Stderr, "optimisation study: %d-component u*()...\n", components)
			curve, err := exp.OptimizationStudy(diab, components, kList, *alpha, *budget)
			if err != nil {
				fatal(err)
			}
			if err := exp.ReportOptimization(os.Stdout, curve); err != nil {
				fatal(err)
			}
			if p := csvPath(*outDir, fmt.Sprintf("fig67_%dcomp.csv", components)); p != "" {
				if err := exp.WriteOptimizationCSV(p, curve); err != nil {
					fatal(err)
				}
			}
			fmt.Println()
		}
	}
}

func csvPath(dir, name string) string {
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, name)
}

func effortFigure(name string, tb *exp.Testbed, ks []int, csvOut string) error {
	panels := []string{"a", "b", "c"}
	var curves []*exp.EffortCurve
	for components := 1; components <= 3; components++ {
		fmt.Fprintf(os.Stderr, "%s%s: %s, %d-component u*()...\n", name, panels[components-1], tb.Name, components)
		curve, err := exp.LabelsToFullPrecision(tb, components, ks)
		if err != nil {
			return err
		}
		curves = append(curves, curve)
		if err := exp.ReportEffort(os.Stdout, fmt.Sprintf("%s%s", name, panels[components-1]), []*exp.EffortCurve{curve}); err != nil {
			return err
		}
	}
	if csvOut != "" {
		return exp.WriteEffortCSV(csvOut, curves)
	}
	return nil
}

func parseKs(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		var k int
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &k); err != nil {
			return nil, fmt.Errorf("invalid k %q", p)
		}
		out = append(out, k)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
